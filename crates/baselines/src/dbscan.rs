//! DBSCAN (Ester, Kriegel, Sander, Xu — KDD 1996), the density-based
//! algorithm the paper discusses in §2: "grows clusters by including the
//! dense neighborhoods of points already in the cluster. This approach,
//! however, may be prone to errors if clusters are not well-separated."
//!
//! Implemented over the same θ-neighbor graph ROCK uses (a similarity
//! threshold is exactly an ε-radius in similarity space), so the two
//! algorithms are compared on identical neighborhoods — the only
//! difference is density-reachability vs links.

use rock_core::cluster::Clustering;
use rock_core::error::RockError;
use rock_core::governor::{Phase, RunGovernor};
use rock_core::neighbors::NeighborGraph;

/// DBSCAN configuration.
#[derive(Clone, Copy, Debug)]
pub struct DbscanConfig {
    /// A point is a *core* point if it has at least this many neighbors
    /// (the point itself included, as in the original paper's `MinPts`).
    pub min_pts: usize,
}

impl DbscanConfig {
    /// The common default `MinPts = 4`.
    pub fn new(min_pts: usize) -> Self {
        DbscanConfig { min_pts }
    }
}

/// Runs DBSCAN over a prebuilt neighbor graph.
///
/// Clusters are maximal sets of density-connected points; border points
/// (non-core neighbors of a core point) join the first cluster that
/// reaches them; everything else is noise (reported as outliers).
pub fn dbscan(graph: &NeighborGraph, config: DbscanConfig) -> Clustering {
    // tidy-allow(panic): an unlimited governor never trips
    dbscan_governed(graph, config, &RunGovernor::unlimited())
        .expect("an unlimited governor never trips")
}

/// As [`dbscan`], under a [`RunGovernor`]: the budgets and cancellation
/// token are checked at every seed-point expansion.
///
/// # Errors
/// [`RockError::Interrupted`] when the governor trips.
pub fn dbscan_governed(
    graph: &NeighborGraph,
    config: DbscanConfig,
    governor: &RunGovernor,
) -> Result<Clustering, RockError> {
    let n = graph.len();
    const UNVISITED: u32 = u32::MAX;
    const NOISE: u32 = u32::MAX - 1;
    let mut label = vec![UNVISITED; n];
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    let is_core = |p: usize| graph.degree(p) + 1 >= config.min_pts;

    let mut queue: Vec<u32> = Vec::new();
    for p in 0..n {
        governor.check_at(Phase::Merge, p as u64)?;
        if label[p] != UNVISITED {
            continue;
        }
        if !is_core(p) {
            label[p] = NOISE;
            continue;
        }
        // Start a new cluster and expand by density-reachability.
        let cid = clusters.len() as u32;
        clusters.push(Vec::new());
        label[p] = cid;
        clusters[cid as usize].push(p as u32);
        queue.clear();
        queue.push(p as u32);
        while let Some(q) = queue.pop() {
            if !is_core(q as usize) {
                continue; // border point: belongs, but doesn't expand
            }
            for &r in graph.neighbors(q as usize) {
                let l = label[r as usize];
                if l == UNVISITED || l == NOISE {
                    label[r as usize] = cid;
                    clusters[cid as usize].push(r);
                    queue.push(r);
                }
            }
        }
    }

    let outliers: Vec<u32> = (0..n as u32)
        .filter(|&p| label[p as usize] == NOISE)
        .collect();
    Ok(Clustering::new(clusters, outliers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::points::Transaction;
    use rock_core::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    #[test]
    fn separated_dense_groups() {
        let ts = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([1, 3, 4]),
            Transaction::from([2, 3, 4]),
            Transaction::from([10, 11, 12]),
            Transaction::from([10, 11, 13]),
            Transaction::from([10, 12, 13]),
            Transaction::from([11, 12, 13]),
            Transaction::from([99]),
        ];
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let c = dbscan(&g, DbscanConfig::new(3));
        assert_eq!(c.sizes(), vec![4, 4]);
        assert_eq!(c.outliers, vec![8]);
    }

    #[test]
    fn border_points_join_but_do_not_expand() {
        // A 4-clique with a pendant border point, and min_pts = 4: the
        // pendant (1 neighbor) is border, reachable from the core.
        let mut m = SimilarityMatrix::new(6);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    m.set(i, j, 0.9);
                }
            }
        }
        m.set(3, 4, 0.9); // border point 4
        m.set(4, 5, 0.9); // 5 hangs off the border point — NOT reachable
        let g = NeighborGraph::build(&m, 0.5);
        let c = dbscan(&g, DbscanConfig::new(4));
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.clusters[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(c.outliers, vec![5]);
    }

    #[test]
    fn chains_across_overlap_like_the_paper_warns() {
        // Fig.-1 data: density-reachability chains through the shared
        // {1,2,x} transactions, merging the two true clusters — the §2
        // criticism ("prone to errors if clusters are not
        // well-separated").
        let ts = {
            let mut ts = Vec::new();
            let a = [1u32, 2, 3, 4, 5];
            for x in 0..5 {
                for y in (x + 1)..5 {
                    for z in (y + 1)..5 {
                        ts.push(Transaction::from([a[x], a[y], a[z]]));
                    }
                }
            }
            let b = [1u32, 2, 6, 7];
            for x in 0..4 {
                for y in (x + 1)..4 {
                    for z in (y + 1)..4 {
                        ts.push(Transaction::from([b[x], b[y], b[z]]));
                    }
                }
            }
            ts
        };
        let g = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.5);
        let c = dbscan(&g, DbscanConfig::new(3));
        assert_eq!(c.num_clusters(), 1, "DBSCAN merges Fig. 1's clusters");
    }

    #[test]
    fn all_noise_when_min_pts_too_high() {
        let m = SimilarityMatrix::new(4);
        let g = NeighborGraph::build(&m, 0.5);
        let c = dbscan(&g, DbscanConfig::new(2));
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.outliers.len(), 4);
    }
}

//! Partitional clustering: Lloyd's k-means with k-means++ seeding (§1.1).
//!
//! The paper's discussion of partitional algorithms centres on the
//! criterion function `E = Σᵢ Σ_{x∈Cᵢ} d(x, mᵢ)` — minimising point-to-
//! centroid distance. This module implements that comparator and exposes
//! `E` so the bench suite can show the §1.1 failure mode (splitting large
//! categorical clusters lowers `E`).

use crate::vectorize::sq_euclidean;
use rand::Rng;
use rock_core::cluster::Clustering;
use rock_core::error::RockError;
use rock_core::governor::{Phase, RunGovernor};

/// Configuration for a k-means run.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when no assignment changes.
    pub tol_changes: usize,
}

impl KMeansConfig {
    /// `k` clusters, up to 100 iterations, stop on zero changes.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 100,
            tol_changes: 0,
        }
    }
}

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// The partition.
    pub clustering: Clustering,
    /// Final centroids, aligned with `clustering.clusters`.
    pub centroids: Vec<Vec<f64>>,
    /// Final value of the criterion function `E` (sum of Euclidean
    /// distances of points to their centroid, §1.1).
    pub criterion: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// Runs k-means++ seeding followed by Lloyd iterations.
///
/// # Panics
/// Panics if `points` is empty, `k == 0`, or `k > points.len()`.
pub fn kmeans<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    config: KMeansConfig,
    rng: &mut R,
) -> KMeansResult {
    // tidy-allow(panic): an unlimited governor never trips
    kmeans_governed(points, config, rng, &RunGovernor::unlimited())
        .expect("an unlimited governor never trips")
}

/// As [`kmeans`], under a [`RunGovernor`]: the budgets and cancellation
/// token are checked at every Lloyd sweep.
///
/// # Errors
/// [`RockError::Interrupted`] when the governor trips.
///
/// # Panics
/// As [`kmeans`] on invalid input.
pub fn kmeans_governed<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    config: KMeansConfig,
    rng: &mut R,
    governor: &RunGovernor,
) -> Result<KMeansResult, RockError> {
    let n = points.len();
    assert!(n > 0, "cannot cluster zero points");
    assert!(
        config.k >= 1 && config.k <= n,
        "k must be in 1..=n, got {}",
        config.k
    );
    let dim = points[0].len();

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(config.k);
    centroids.push(points[rng.random_range(0..n)].clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| sq_euclidean(p, &centroids[0]))
        .collect();
    while centroids.len() < config.k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with chosen centroids; pick arbitrary.
            rng.random_range(0..n)
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let next_centroid = points[next].clone();
        for (i, p) in points.iter().enumerate() {
            let d = sq_euclidean(p, &next_centroid);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        centroids.push(next_centroid);
    }

    // Lloyd iterations.
    let mut assign: Vec<usize> = vec![0; n];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        governor.check_at(Phase::Merge, iter as u64)?;
        iterations = iter + 1;
        let mut changes = 0usize;
        for (i, p) in points.iter().enumerate() {
            let mut best = (f64::INFINITY, 0usize);
            for (c, cent) in centroids.iter().enumerate() {
                let d = sq_euclidean(p, cent);
                if d < best.0 {
                    best = (d, c);
                }
            }
            if assign[i] != best.1 {
                assign[i] = best.1;
                changes += 1;
            }
        }
        // Recompute centroids; empty clusters keep their old centroid.
        let mut sums = vec![vec![0.0; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (i, p) in points.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, x) in sums[assign[i]].iter_mut().zip(p) {
                *s += *x;
            }
        }
        for c in 0..config.k {
            if counts[c] > 0 {
                for (cent, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cent = *s / counts[c] as f64;
                }
            }
        }
        if changes <= config.tol_changes {
            break;
        }
    }

    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); config.k];
    for (i, &c) in assign.iter().enumerate() {
        clusters[c].push(i as u32);
    }
    let criterion = criterion_e(points, &assign, &centroids);
    // Re-derive centroids in the normalised cluster order.
    let clustering = Clustering::new(clusters, Vec::new());
    let centroids_ordered = clustering
        .clusters
        .iter()
        .map(|members| {
            let mut sum = vec![0.0; dim];
            for &p in members {
                for (s, x) in sum.iter_mut().zip(&points[p as usize]) {
                    *s += *x;
                }
            }
            sum.iter_mut().for_each(|s| *s /= members.len() as f64);
            sum
        })
        .collect();
    Ok(KMeansResult {
        clustering,
        centroids: centroids_ordered,
        criterion,
        iterations,
    })
}

/// The §1.1 criterion function `E`: the sum over all points of the
/// Euclidean distance to their cluster's centroid.
pub fn criterion_e(points: &[Vec<f64>], assign: &[usize], centroids: &[Vec<f64>]) -> f64 {
    points
        .iter()
        .zip(assign)
        .map(|(p, &c)| sq_euclidean(p, &centroids[c]).sqrt())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            pts.push(vec![0.0 + jitter, 0.0]);
            pts.push(vec![10.0 + jitter, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_blobs() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let r = kmeans(&pts, KMeansConfig::new(2), &mut rng);
        assert_eq!(r.clustering.sizes(), vec![20, 20]);
        for cl in &r.clustering.clusters {
            let even: std::collections::HashSet<bool> =
                cl.iter().map(|&p| p % 2 == 0).collect();
            assert_eq!(even.len(), 1);
        }
    }

    #[test]
    fn criterion_decreases_with_better_k() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(2);
        let r1 = kmeans(&pts, KMeansConfig::new(1), &mut rng);
        let r2 = kmeans(&pts, KMeansConfig::new(2), &mut rng);
        assert!(r2.criterion < r1.criterion);
    }

    #[test]
    fn k_equals_n_gives_zero_criterion() {
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 100.0]).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let r = kmeans(&pts, KMeansConfig::new(5), &mut rng);
        assert!(r.criterion < 1e-9);
    }

    #[test]
    fn converges_and_reports_iterations() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(4);
        let r = kmeans(&pts, KMeansConfig::new(2), &mut rng);
        assert!(r.iterations <= 100);
        assert!(r.iterations >= 1);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn k_zero_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = kmeans(&[vec![0.0]], KMeansConfig::new(0), &mut rng);
    }
}

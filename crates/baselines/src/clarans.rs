//! CLARANS (Ng & Han, VLDB 1994): k-medoids via randomized search —
//! the partitional comparator the paper cites in §2 ("CLARANS employs a
//! randomized search to find the k best cluster medoids").
//!
//! The search walks the graph whose nodes are medoid sets and whose
//! edges are single-medoid swaps: from the current set, try up to
//! `max_neighbor` random swaps, move on the first cost improvement, and
//! declare a local optimum after `max_neighbor` failures; repeat
//! `num_local` times and keep the best optimum. Works over any
//! [`PairwiseSimilarity`] with cost `Σ (1 − sim(point, nearest medoid))`,
//! so it runs on categorical data directly (unlike k-means).

use rand::Rng;
use rock_core::cluster::Clustering;
use rock_core::error::RockError;
use rock_core::governor::{Phase, RunGovernor};
use rock_core::similarity::PairwiseSimilarity;

/// CLARANS configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClaransConfig {
    /// Number of medoids (clusters).
    pub k: usize,
    /// Random restarts (`numlocal` in the paper; 2 is customary).
    pub num_local: usize,
    /// Failed random swaps before declaring a local optimum
    /// (`maxneighbor`).
    pub max_neighbor: usize,
}

impl ClaransConfig {
    /// The paper's customary parameters: 2 restarts, `max_neighbor` =
    /// max(250, 1.25% of k·(n−k)) — here simplified to 250.
    pub fn new(k: usize) -> Self {
        ClaransConfig {
            k,
            num_local: 2,
            max_neighbor: 250,
        }
    }
}

/// Result of a CLARANS run.
#[derive(Clone, Debug)]
pub struct ClaransResult {
    /// The partition (every point assigned to its nearest medoid).
    pub clustering: Clustering,
    /// The chosen medoids (point ids), aligned with
    /// `clustering.clusters`.
    pub medoids: Vec<u32>,
    /// Final cost `Σ (1 − sim(point, nearest medoid))`.
    pub cost: f64,
}

fn total_cost<S: PairwiseSimilarity>(sim: &S, medoids: &[u32]) -> f64 {
    let n = sim.len();
    let mut cost = 0.0;
    for p in 0..n {
        let best = medoids
            .iter()
            .map(|&m| sim.sim(p, m as usize))
            .fold(0.0f64, f64::max);
        cost += 1.0 - best;
    }
    cost
}

/// One randomized descent of the search graph: a random initial medoid
/// set, then single-medoid swaps until `max_neighbor` consecutive
/// failures declare a local optimum. `swaps` is the shared attempt
/// counter the governor checkpoints are indexed by.
fn local_optimum<S: PairwiseSimilarity, R: Rng + ?Sized>(
    sim: &S,
    config: ClaransConfig,
    rng: &mut R,
    governor: &RunGovernor,
    swaps: &mut u64,
) -> Result<(Vec<u32>, f64), RockError> {
    let n = sim.len();
    // Random initial medoid set.
    let mut medoids: Vec<u32> = rock_core::sampling::sample_indices(n, config.k, rng)
        .into_iter()
        .map(|i| i as u32)
        .collect();
    let mut cost = total_cost(sim, &medoids);
    let mut failures = 0usize;
    // With k == n every point is a medoid and the swap graph has no
    // edges — the initial set is the (optimal) local optimum.
    while config.k < n && failures < config.max_neighbor {
        governor.check_at(Phase::Merge, *swaps)?;
        *swaps += 1;
        // Random neighbor in the search graph: swap one medoid for
        // one non-medoid.
        let slot = rng.random_range(0..config.k);
        let replacement = loop {
            let c = rng.random_range(0..n) as u32;
            if !medoids.contains(&c) {
                break c;
            }
        };
        let old = medoids[slot];
        medoids[slot] = replacement;
        let new_cost = total_cost(sim, &medoids);
        if new_cost + 1e-12 < cost {
            cost = new_cost;
            failures = 0;
        } else {
            medoids[slot] = old;
            failures += 1;
        }
    }
    Ok((medoids, cost))
}

/// Runs CLARANS over an index-pairwise similarity.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn clarans<S: PairwiseSimilarity, R: Rng + ?Sized>(
    sim: &S,
    config: ClaransConfig,
    rng: &mut R,
) -> ClaransResult {
    // tidy-allow(panic): an unlimited governor never trips
    clarans_governed(sim, config, rng, &RunGovernor::unlimited())
        .expect("an unlimited governor never trips")
}

/// As [`clarans`], under a [`RunGovernor`]: the budgets and cancellation
/// token are checked at every swap attempt.
///
/// # Errors
/// [`RockError::Interrupted`] when the governor trips.
///
/// # Panics
/// As [`clarans`] on invalid input.
pub fn clarans_governed<S: PairwiseSimilarity, R: Rng + ?Sized>(
    sim: &S,
    config: ClaransConfig,
    rng: &mut R,
    governor: &RunGovernor,
) -> Result<ClaransResult, RockError> {
    let n = sim.len();
    assert!(
        config.k >= 1 && config.k <= n,
        "k must be in 1..=n, got {}",
        config.k
    );
    // The first restart seeds the incumbent; later restarts replace it
    // only on a strict cost improvement.
    let mut swaps: u64 = 0;
    let (mut medoids, mut cost) = local_optimum(sim, config, rng, governor, &mut swaps)?;
    for _ in 1..config.num_local.max(1) {
        let (m, c) = local_optimum(sim, config, rng, governor, &mut swaps)?;
        if c < cost {
            medoids = m;
            cost = c;
        }
    }

    // Materialise the partition (ties to the lowest medoid index).
    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); config.k];
    for p in 0..n {
        let mut assigned = (0usize, f64::NEG_INFINITY);
        for (c, &m) in medoids.iter().enumerate() {
            let s = sim.sim(p, m as usize);
            if s > assigned.1 {
                assigned = (c, s);
            }
        }
        clusters[assigned.0].push(p as u32);
    }
    // Re-derive medoid order to match the normalised clustering order.
    let clustering = Clustering::new(clusters, Vec::new());
    let medoids_ordered = clustering
        .clusters
        .iter()
        .map(|members| {
            *medoids
                .iter()
                .find(|m| members.binary_search(m).is_ok())
                // tidy-allow(panic): the partition loop assigns every point, including each medoid, to its own cluster (self-similarity is maximal)
                .expect("each cluster contains its medoid")
        })
        .collect();
    Ok(ClaransResult {
        clustering,
        medoids: medoids_ordered,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rock_core::points::Transaction;
    use rock_core::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    #[test]
    fn separates_two_blocks() {
        let m = SimilarityMatrix::from_fn(12, |i, j| {
            if (i < 6) == (j < 6) {
                0.9
            } else {
                0.1
            }
        });
        let mut rng = StdRng::seed_from_u64(94);
        let r = clarans(&m, ClaransConfig::new(2), &mut rng);
        assert_eq!(r.clustering.sizes(), vec![6, 6]);
        assert!(r.cost < 12.0 * 0.2);
        for cl in &r.clustering.clusters {
            let side: std::collections::HashSet<bool> =
                cl.iter().map(|&p| p < 6).collect();
            assert_eq!(side.len(), 1);
        }
    }

    #[test]
    fn medoids_belong_to_their_clusters() {
        let ts: Vec<Transaction> = (0..10)
            .map(|i| {
                if i < 5 {
                    Transaction::from([1, 2, 3 + (i % 2) as u32])
                } else {
                    Transaction::from([10, 11, 12 + (i % 2) as u32])
                }
            })
            .collect();
        let pw = PointsWith::new(&ts, Jaccard);
        let mut rng = StdRng::seed_from_u64(5);
        let r = clarans(&pw, ClaransConfig::new(2), &mut rng);
        for (cl, &m) in r.clustering.clusters.iter().zip(&r.medoids) {
            assert!(cl.binary_search(&m).is_ok());
        }
    }

    #[test]
    fn k_equals_n_zero_cost() {
        let m = SimilarityMatrix::from_fn(4, |_, _| 0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let r = clarans(&m, ClaransConfig::new(4), &mut rng);
        assert!(r.cost < 1e-9, "every point is its own medoid");
    }

    #[test]
    fn restarts_never_worsen_cost() {
        let m = SimilarityMatrix::from_fn(20, |i, j| {
            if (i % 3) == (j % 3) {
                0.8
            } else {
                0.2
            }
        });
        let cost_with = |num_local: usize| {
            let mut rng = StdRng::seed_from_u64(7);
            clarans(
                &m,
                ClaransConfig {
                    k: 3,
                    num_local,
                    max_neighbor: 100,
                },
                &mut rng,
            )
            .cost
        };
        // More restarts explore at least as much (same seed stream, so
        // the first local optimum is identical).
        assert!(cost_with(3) <= cost_with(1) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn k_zero_panics() {
        let m = SimilarityMatrix::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = clarans(&m, ClaransConfig::new(0), &mut rng);
    }
}

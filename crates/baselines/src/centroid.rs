//! Centroid-based agglomerative hierarchical clustering — the paper's
//! "traditional algorithm" comparator (§1.1, §5).
//!
//! Each point starts as its own cluster; the pair of clusters whose
//! centroids are closest in Euclidean distance is merged until `k`
//! clusters remain. Outlier handling follows §5 verbatim: "eliminating
//! clusters with only one point when the number of clusters reduces to
//! 1/3 of the original number".
//!
//! The implementation uses the classic nearest-neighbor-array scheme:
//! every live cluster caches its nearest partner; a merge invalidates only
//! the entries that referenced the merged clusters. O(n²·d) typical,
//! O(n³·d) adversarial worst case — ample for the paper's data sizes
//! (n ≤ 8124) and honest about what 1999-era "traditional hierarchical
//! clustering" did.

use rock_core::cluster::Clustering;
use rock_core::error::RockError;
use rock_core::governor::{Phase, RunGovernor};

/// Configuration of the traditional comparator.
#[derive(Clone, Copy, Debug)]
pub struct CentroidConfig {
    /// Desired number of clusters.
    pub k: usize,
    /// §5's outlier rule: when the cluster count first falls to
    /// `n / outlier_divisor`, singleton clusters are discarded.
    /// `None` disables outlier elimination.
    pub outlier_divisor: Option<usize>,
}

impl CentroidConfig {
    /// The paper's setup: target `k`, singletons weeded at n/3.
    pub fn paper(k: usize) -> Self {
        CentroidConfig {
            k,
            outlier_divisor: Some(3),
        }
    }

    /// No outlier handling.
    pub fn plain(k: usize) -> Self {
        CentroidConfig {
            k,
            outlier_divisor: None,
        }
    }
}

/// One cluster's accumulated state. Slots are never vacated: a merged or
/// weeded cluster's `members` are moved out with `mem::take` and its
/// index leaves `live`, so every index reachable through `live` is
/// always valid — no `Option` unwrapping anywhere on the hot path.
struct ClusterSlot {
    /// Sum of member vectors (centroid = sum / size).
    sum: Vec<f64>,
    members: Vec<u32>,
}

/// Squared distance between the centroids of two slots, computed from the
/// member sums without materialising the centroids.
fn centroid_sq_dist(a: &ClusterSlot, b: &ClusterSlot) -> f64 {
    let (na, nb) = (a.members.len() as f64, b.members.len() as f64);
    a.sum
        .iter()
        .zip(&b.sum)
        .map(|(x, y)| {
            let d = x / na - y / nb;
            d * d
        })
        .sum()
}

/// Runs centroid-based agglomerative clustering over dense vectors.
///
/// Returns the clustering (point ids index `points`); outliers are the
/// singletons eliminated by the §5 rule, if enabled.
///
/// # Panics
/// Panics if `points` is empty, dimensions are inconsistent, or
/// `config.k == 0`.
pub fn centroid_hierarchical(points: &[Vec<f64>], config: CentroidConfig) -> Clustering {
    // tidy-allow(panic): an unlimited governor never trips
    centroid_hierarchical_governed(points, config, &RunGovernor::unlimited())
        .expect("an unlimited governor never trips")
}

/// As [`centroid_hierarchical`], under a [`RunGovernor`]: the budgets
/// and cancellation token are checked at every merge, surfacing
/// [`RockError::Interrupted`] instead of running open-loop.
///
/// # Errors
/// [`RockError::Interrupted`] when the governor trips.
///
/// # Panics
/// As [`centroid_hierarchical`] on invalid input.
pub fn centroid_hierarchical_governed(
    points: &[Vec<f64>],
    config: CentroidConfig,
    governor: &RunGovernor,
) -> Result<Clustering, RockError> {
    assert!(config.k >= 1, "need at least one target cluster");
    assert!(!points.is_empty(), "cannot cluster zero points");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensions"
    );
    let n = points.len();

    let mut slots: Vec<ClusterSlot> = points
        .iter()
        .enumerate()
        .map(|(i, p)| ClusterSlot {
            sum: p.clone(),
            members: vec![i as u32],
        })
        .collect();
    let mut live: Vec<usize> = (0..n).collect();
    // nearest[i] = (best squared centroid distance, partner) over live
    // clusters, or None when stale.
    let mut nearest: Vec<Option<(f64, usize)>> = vec![None; n];
    let weed_threshold = config.outlier_divisor.map(|d| (n / d).max(config.k));
    let mut weeded = config.outlier_divisor.is_none();
    let mut outliers: Vec<u32> = Vec::new();
    let mut merges: u64 = 0;

    let recompute = |slots: &[ClusterSlot], live: &[usize], i: usize| {
        let si = &slots[i];
        let mut best: Option<(f64, usize)> = None;
        for &j in live {
            if j == i {
                continue;
            }
            let d = centroid_sq_dist(si, &slots[j]);
            let better = match best {
                None => true,
                // Tie-break on index for determinism.
                Some((bd, bj)) => d < bd || (d == bd && j < bj),
            };
            if better {
                best = Some((d, j));
            }
        }
        best
    };

    while live.len() > config.k {
        governor.check_at(Phase::Merge, merges)?;
        // §5 outlier rule, applied once.
        if let (Some(at), false) = (weed_threshold, weeded) {
            if live.len() <= at {
                let (kept, dropped): (Vec<usize>, Vec<usize>) =
                    live.iter().partition(|&&i| slots[i].members.len() > 1);
                // Keep at least k clusters even if weeding is aggressive.
                if kept.len() >= config.k {
                    for i in dropped {
                        outliers.extend(std::mem::take(&mut slots[i].members));
                    }
                    live = kept;
                    for entry in nearest.iter_mut() {
                        *entry = None; // partners may be gone
                    }
                }
                weeded = true;
                continue;
            }
        }

        // Find the globally closest pair via the nearest-partner cache.
        let mut best: Option<(f64, usize, usize)> = None;
        for idx in 0..live.len() {
            let i = live[idx];
            if nearest[i].is_none() {
                nearest[i] = recompute(&slots, &live, i);
            }
            if let Some((d, j)) = nearest[i] {
                let better = match best {
                    None => true,
                    Some((bd, bi, bj)) => {
                        d < bd || (d == bd && (i.min(j), i.max(j)) < (bi.min(bj), bi.max(bj)))
                    }
                };
                if better {
                    best = Some((d, i, j));
                }
            }
        }
        let Some((_, u, v)) = best else {
            break; // fewer than 2 live clusters
        };

        // Merge v into u: move v's members out, fold its sum into u.
        let sv_members = std::mem::take(&mut slots[v].members);
        let sv_sum = std::mem::take(&mut slots[v].sum);
        let su = &mut slots[u];
        for (x, y) in su.sum.iter_mut().zip(&sv_sum) {
            *x += *y;
        }
        su.members.extend(sv_members);
        live.retain(|&i| i != v);
        nearest[u] = None;
        nearest[v] = None;
        merges += 1;
        // Fix up the caches. Centroid linkage is not *reducible*: the
        // merged centroid is a convex combination of the old ones and can
        // land closer to a bystander cluster than that cluster's cached
        // nearest partner. So besides invalidating entries that pointed
        // at u or v, compare every live cluster against the new centroid
        // and adopt it when it wins.
        for &i in &live {
            if i == u {
                continue;
            }
            match nearest[i] {
                Some((_, j)) if j == u || j == v => nearest[i] = None,
                Some((d, _)) => {
                    let dw = centroid_sq_dist(&slots[i], &slots[u]);
                    if dw < d {
                        nearest[i] = Some((dw, u));
                    }
                }
                None => {}
            }
        }
    }

    let clusters: Vec<Vec<u32>> = live
        .into_iter()
        .map(|i| std::mem::take(&mut slots[i].members))
        .collect();
    Ok(Clustering::new(clusters, outliers))
}

/// Convenience: cluster and also return the final centroids
/// (in cluster order of the returned [`Clustering`]).
pub fn centroid_hierarchical_with_centroids(
    points: &[Vec<f64>],
    config: CentroidConfig,
) -> (Clustering, Vec<Vec<f64>>) {
    let clustering = centroid_hierarchical(points, config);
    let dim = points[0].len();
    let centroids = clustering
        .clusters
        .iter()
        .map(|members| {
            let mut sum = vec![0.0; dim];
            for &p in members {
                for (s, x) in sum.iter_mut().zip(&points[p as usize]) {
                    *s += *x;
                }
            }
            let n = members.len() as f64;
            sum.iter_mut().for_each(|s| *s /= n);
            sum
        })
        .collect();
    (clustering, centroids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectorize::transactions_to_vectors;
    use rock_core::governor::{CancellationToken, TripReason};
    use rock_core::points::Transaction;

    #[test]
    fn example_1_1_wrong_merge() {
        // §1.1 Example 1.1: the centroid algorithm merges {1,4} and {6}
        // (points 2 and 3) even though they share no item — the failure
        // mode motivating ROCK. Reproduce it exactly.
        let ts = vec![
            Transaction::from([0, 1, 2, 4]),
            Transaction::from([1, 2, 3, 4]),
            Transaction::from([0, 3]),
            Transaction::from([5]),
        ];
        let vs = transactions_to_vectors(&ts, 6);
        let c = centroid_hierarchical(&vs, CentroidConfig::plain(2));
        // After merging 0 and 1 (distance √2), points 2 and 3 merge
        // (distance √3 < 3.5 and 4.5 to the merged centroid).
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.clusters, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn separates_well_separated_gaussians() {
        // Two tight groups in 2-D.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        let c = centroid_hierarchical(&pts, CentroidConfig::plain(2));
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.sizes(), vec![10, 10]);
        for cl in &c.clusters {
            let even: std::collections::HashSet<bool> =
                cl.iter().map(|&p| p % 2 == 0).collect();
            assert_eq!(even.len(), 1, "groups must not mix");
        }
    }

    #[test]
    fn outlier_rule_drops_singletons() {
        // 9 points: two groups of 4 plus one far-away point. With the
        // paper's n/3 rule, when 3 clusters remain the singleton is
        // eliminated.
        let mut pts = Vec::new();
        for i in 0..4 {
            pts.push(vec![0.0, i as f64 * 0.1]);
        }
        for i in 0..4 {
            pts.push(vec![100.0, i as f64 * 0.1]);
        }
        pts.push(vec![5000.0, 5000.0]);
        let c = centroid_hierarchical(&pts, CentroidConfig::paper(2));
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.outliers, vec![8]);
    }

    #[test]
    fn k_equals_n_is_identity() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let c = centroid_hierarchical(&pts, CentroidConfig::plain(3));
        assert_eq!(c.num_clusters(), 3);
        assert!(c.outliers.is_empty());
    }

    #[test]
    fn centroids_returned_match_members() {
        let pts = vec![vec![0.0, 0.0], vec![0.0, 2.0], vec![10.0, 0.0], vec![10.0, 2.0]];
        let (c, cents) = centroid_hierarchical_with_centroids(&pts, CentroidConfig::plain(2));
        assert_eq!(c.num_clusters(), 2);
        for (cl, cent) in c.clusters.iter().zip(&cents) {
            let x0: f64 = cl.iter().map(|&p| pts[p as usize][0]).sum::<f64>() / cl.len() as f64;
            assert!((cent[0] - x0).abs() < 1e-12);
            assert!((cent[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn merged_centroid_adopted_as_new_nearest() {
        // Non-reducibility regression: u = (0,0), v = (2,0) merge to
        // centroid (1,0); x = (1,5) was nearest to j = (1, 5.05)-ish at
        // distance 5.02 but the merged centroid is at exactly 5. The
        // final clustering must reflect the true closest pairs: x joins
        // the merged cluster before j does anything wrong.
        let pts = vec![
            vec![0.0, 0.0],   // u
            vec![2.0, 0.0],   // v
            vec![1.0, 5.0],   // x
            vec![1.0, 10.1],  // j: x's initial nearest is NOT j (5.1)… keep j far
        ];
        let c = centroid_hierarchical(&pts, CentroidConfig::plain(2));
        // u and v merge first (distance 2); then x (distance 5 to the
        // merged centroid) joins them rather than pairing with far-away j.
        assert_eq!(c.clusters, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn deterministic() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64])
            .collect();
        let a = centroid_hierarchical(&pts, CentroidConfig::plain(4));
        let b = centroid_hierarchical(&pts, CentroidConfig::plain(4));
        assert_eq!(a, b);
    }

    #[test]
    fn governed_matches_plain_and_cancels() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64])
            .collect();
        let plain = centroid_hierarchical(&pts, CentroidConfig::plain(4));
        let governed =
            centroid_hierarchical_governed(&pts, CentroidConfig::plain(4), &RunGovernor::unlimited())
                .unwrap();
        assert_eq!(plain, governed);

        let token = CancellationToken::new();
        token.cancel();
        let g = RunGovernor::unlimited().with_cancel_token(token);
        let err = centroid_hierarchical_governed(&pts, CentroidConfig::plain(4), &g).unwrap_err();
        assert!(matches!(
            err,
            RockError::Interrupted {
                phase: Phase::Merge,
                reason: TripReason::Cancelled,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_input_panics() {
        let _ = centroid_hierarchical(&[], CentroidConfig::plain(1));
    }
}

//! Similarity-based hierarchical clustering: MST/single-link, group
//! average, and complete linkage (§1.1).
//!
//! The paper discusses these as the options available when the similarity
//! measure is non-metric (e.g. the Jaccard coefficient): "we have to use
//! either the minimum spanning tree (MST) hierarchical clustering
//! algorithm or hierarchical clustering with group average". It then shows
//! both fail on overlapping categorical clusters (Example 1.2) — MST is
//! fragile, group average splits large clusters. They are implemented
//! here as comparators.
//!
//! All three linkages admit Lance–Williams-style updates on a similarity
//! matrix, so one engine serves them: O(n²) memory, O(n² · n) = O(n³)
//! worst-case time with the nearest-partner cache (O(n²) typical) —
//! adequate for sample-sized inputs.

use rock_core::cluster::Clustering;
use rock_core::error::RockError;
use rock_core::governor::{Phase, RunGovernor};
use rock_core::similarity::PairwiseSimilarity;

/// How inter-cluster similarity is derived when clusters merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Linkage {
    /// `sim(w, x) = max(sim(u, x), sim(v, x))` — merges the pair of
    /// clusters containing the most similar pair of points (the MST
    /// algorithm; known to be very sensitive to outliers, §1.1).
    Single,
    /// `sim(w, x) = min(sim(u, x), sim(v, x))` — merges the pair whose
    /// least-similar points are most similar.
    Complete,
    /// Weighted average: `sim(w, x) = (n_u·sim(u,x) + n_v·sim(v,x)) /
    /// (n_u + n_v)` — the group-average algorithm (UPGMA), which the paper
    /// notes "has a tendency to split large clusters".
    Average,
}

/// Configuration of a linkage run.
#[derive(Clone, Copy, Debug)]
pub struct LinkageConfig {
    /// Desired number of clusters.
    pub k: usize,
    /// The linkage criterion.
    pub linkage: Linkage,
    /// Stop merging when the best inter-cluster similarity falls below
    /// this value (clusters left apart stay apart). `0.0` never stops
    /// early.
    pub min_similarity: f64,
}

impl LinkageConfig {
    /// `k` clusters with the given linkage, no early stop.
    pub fn new(k: usize, linkage: Linkage) -> Self {
        LinkageConfig {
            k,
            linkage,
            min_similarity: 0.0,
        }
    }
}

/// Runs agglomerative clustering under the configured linkage over a
/// pairwise similarity.
///
/// # Panics
/// Panics if the point set is empty or `config.k == 0`.
pub fn similarity_linkage<S: PairwiseSimilarity>(sim: &S, config: LinkageConfig) -> Clustering {
    // tidy-allow(panic): an unlimited governor never trips
    similarity_linkage_governed(sim, config, &RunGovernor::unlimited())
        .expect("an unlimited governor never trips")
}

/// As [`similarity_linkage`], under a [`RunGovernor`]: the budgets and
/// cancellation token are checked at every merge.
///
/// # Errors
/// [`RockError::Interrupted`] when the governor trips.
///
/// # Panics
/// As [`similarity_linkage`] on invalid input.
pub fn similarity_linkage_governed<S: PairwiseSimilarity>(
    sim: &S,
    config: LinkageConfig,
    governor: &RunGovernor,
) -> Result<Clustering, RockError> {
    assert!(config.k >= 1, "need at least one target cluster");
    let n = sim.len();
    assert!(n > 0, "cannot cluster zero points");

    // Full similarity matrix (lower triangle), mutated in place by the
    // Lance–Williams updates.
    let idx = |i: usize, j: usize| -> usize {
        let (i, j) = if i > j { (i, j) } else { (j, i) };
        i * (i - 1) / 2 + j
    };
    let mut s: Vec<f64> = vec![0.0; n * n.saturating_sub(1) / 2];
    for i in 1..n {
        for j in 0..i {
            s[idx(i, j)] = sim.sim(i, j);
        }
    }

    // Member lists are never vacated: a merged cluster's members move
    // out with `mem::take` as its index leaves `live`, so every index
    // reachable through `live` is always valid.
    let mut members: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32]).collect();
    let mut live: Vec<usize> = (0..n).collect();
    // nearest-partner cache: (best similarity, partner) per live cluster.
    let mut nearest: Vec<Option<(f64, usize)>> = vec![None; n];
    let mut merges: u64 = 0;

    while live.len() > config.k {
        governor.check_at(Phase::Merge, merges)?;
        let mut best: Option<(f64, usize, usize)> = None;
        for pos in 0..live.len() {
            let i = live[pos];
            if nearest[i].is_none() {
                let mut local: Option<(f64, usize)> = None;
                for &j in &live {
                    if j == i {
                        continue;
                    }
                    let v = s[idx(i, j)];
                    let better = match local {
                        None => true,
                        Some((bv, bj)) => v > bv || (v == bv && j < bj),
                    };
                    if better {
                        local = Some((v, j));
                    }
                }
                nearest[i] = local;
            }
            if let Some((v, j)) = nearest[i] {
                let better = match best {
                    None => true,
                    Some((bv, bi, bj)) => {
                        v > bv || (v == bv && (i.min(j), i.max(j)) < (bi.min(bj), bi.max(bj)))
                    }
                };
                if better {
                    best = Some((v, i, j));
                }
            }
        }
        let Some((v, u_raw, v_raw)) = best else { break };
        if v < config.min_similarity {
            break;
        }
        let (u, w) = (u_raw.min(v_raw), u_raw.max(v_raw));
        // Merge w into u with the Lance–Williams update.
        let nu = members[u].len() as f64;
        let nw = members[w].len() as f64;
        for &x in &live {
            if x == u || x == w {
                continue;
            }
            let su = s[idx(u, x)];
            let sw = s[idx(w, x)];
            s[idx(u, x)] = match config.linkage {
                Linkage::Single => su.max(sw),
                Linkage::Complete => su.min(sw),
                Linkage::Average => (nu * su + nw * sw) / (nu + nw),
            };
        }
        let mw = std::mem::take(&mut members[w]);
        members[u].extend(mw);
        live.retain(|&i| i != w);
        nearest[u] = None;
        merges += 1;
        for &i in &live {
            if let Some((_, j)) = nearest[i] {
                if j == u || j == w {
                    nearest[i] = None;
                }
            }
        }
    }

    let clusters: Vec<Vec<u32>> = live
        .into_iter()
        .map(|i| std::mem::take(&mut members[i]))
        .collect();
    Ok(Clustering::new(clusters, Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::governor::{CancellationToken, TripReason};
    use rock_core::points::Transaction;
    use rock_core::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    fn chain_matrix() -> SimilarityMatrix {
        // A 6-point "chain": consecutive points very similar, the two
        // halves bridged by a medium link; plus distinct cliques.
        SimilarityMatrix::from_fn(6, |i, j| {
            let d = i.abs_diff(j);
            match d {
                1 => 0.9,
                2 => 0.4,
                _ => 0.1,
            }
        })
    }

    #[test]
    fn single_link_chains() {
        // Single link follows the chain: the 6 points collapse pairwise by
        // the strongest edges regardless of cluster diameter.
        let c = similarity_linkage(&chain_matrix(), LinkageConfig::new(2, Linkage::Single));
        assert_eq!(c.num_clusters(), 2);
        // Chaining keeps contiguous runs together.
        for cl in &c.clusters {
            let min = *cl.first().unwrap();
            let max = *cl.last().unwrap();
            assert_eq!((max - min + 1) as usize, cl.len(), "contiguous run");
        }
    }

    #[test]
    fn complete_link_compact() {
        let m = SimilarityMatrix::from_fn(4, |i, j| {
            // 0-1 and 2-3 strongly similar; 1-2 strongly similar too but
            // 0-2/0-3/1-3 dissimilar: complete link refuses the bridge.
            match (j, i) {
                (0, 1) | (2, 3) => 0.95,
                (1, 2) => 0.9,
                _ => 0.05,
            }
        });
        let c = similarity_linkage(&m, LinkageConfig::new(2, Linkage::Complete));
        assert_eq!(c.clusters, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn group_average_on_example_1_2() {
        // §1.1 Example 1.2: group average first merges a cross-cluster
        // pair containing items {1,2} and can end up mixing the two
        // clusters. Verify the failure the paper describes: transactions
        // {1,2,3} and {1,2,7} (different true clusters) land in one
        // cluster.
        let ts = crate::testdata::figure1_transactions();
        let pw = PointsWith::new(&ts, Jaccard);
        let c = similarity_linkage(&pw, LinkageConfig::new(2, Linkage::Average));
        let t123 = ts.iter().position(|t| *t == Transaction::from([1, 2, 3])).unwrap();
        let t127 = ts.iter().position(|t| *t == Transaction::from([1, 2, 7])).unwrap();
        assert_eq!(
            c.cluster_of(t123 as u32),
            c.cluster_of(t127 as u32),
            "group average mixes the overlapping clusters (paper §1.1)"
        );
    }

    #[test]
    fn mst_on_example_1_2_is_fragile() {
        // MST/single-link likewise bridges the two overlapping clusters
        // through the {1,2,x} transactions (Jaccard 0.5 across clusters).
        let ts = crate::testdata::figure1_transactions();
        let pw = PointsWith::new(&ts, Jaccard);
        let c = similarity_linkage(&pw, LinkageConfig::new(2, Linkage::Single));
        // The resulting split cannot be the correct (10, 4): the best
        // cross edge ties the best intra edges at 0.5.
        assert_ne!(c.sizes(), vec![10, 4], "single link bridges the clusters");
    }

    #[test]
    fn min_similarity_stops_early() {
        let m = SimilarityMatrix::from_fn(4, |i, j| if i / 2 == j / 2 { 0.9 } else { 0.0 });
        let mut cfg = LinkageConfig::new(1, Linkage::Single);
        cfg.min_similarity = 0.5;
        let c = similarity_linkage(&m, cfg);
        assert_eq!(c.num_clusters(), 2, "zero-similarity merge refused");
    }

    #[test]
    fn k_one_merges_everything_without_threshold() {
        let m = SimilarityMatrix::from_fn(5, |_, _| 0.5);
        let c = similarity_linkage(&m, LinkageConfig::new(1, Linkage::Average));
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.clusters[0].len(), 5);
    }

    #[test]
    fn governed_matches_plain_and_cancels() {
        let m = chain_matrix();
        let cfg = LinkageConfig::new(2, Linkage::Average);
        let plain = similarity_linkage(&m, cfg);
        let governed = similarity_linkage_governed(&m, cfg, &RunGovernor::unlimited()).unwrap();
        assert_eq!(plain, governed);

        let token = CancellationToken::new();
        token.cancel();
        let g = RunGovernor::unlimited().with_cancel_token(token);
        let err = similarity_linkage_governed(&m, cfg, &g).unwrap_err();
        assert!(matches!(
            err,
            RockError::Interrupted {
                phase: Phase::Merge,
                reason: TripReason::Cancelled,
                ..
            }
        ));
    }
}

//! # rock-baselines — the traditional comparators
//!
//! The clustering algorithms the ROCK paper compares against or discusses
//! in §1.1 and §5, implemented from scratch:
//!
//! * [`centroid`] — centroid-based agglomerative hierarchical clustering
//!   on boolean 0/1 encodings with the paper's n/3 singleton-weeding
//!   outlier rule ("the traditional algorithm" of §5);
//! * [`linkage`] — MST/single-link, complete-link and group-average
//!   hierarchical clustering over arbitrary similarities (§1.1);
//! * [`kmeans`] — Lloyd's k-means minimising the criterion function `E`
//!   (the partitional family of §1.1);
//! * [`kmodes`] — Huang's k-modes, a categorical partitional extra;
//! * [`clarans`] — Ng & Han's randomized k-medoids search (§2);
//! * [`dbscan`] — Ester et al.'s density-based clustering (§2), run over
//!   the same θ-neighbor graph as ROCK;
//! * [`vectorize`] — the §5 categorical → boolean 0/1 encoding;
//! * [`models`] — [`rock_core::ClusterModel`] adapters putting every
//!   baseline behind the same fit-and-report trait as ROCK, each with a
//!   governed core (`*_governed`) accepting a
//!   [`rock_core::governor::RunGovernor`] for cancellation and budgets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centroid;
pub mod clarans;
pub mod dbscan;
pub mod kmeans;
pub mod kmodes;
pub mod linkage;
pub mod models;
pub mod vectorize;

pub use centroid::{
    centroid_hierarchical, centroid_hierarchical_governed, centroid_hierarchical_with_centroids,
    CentroidConfig,
};
pub use clarans::{clarans, clarans_governed, ClaransConfig, ClaransResult};
pub use dbscan::{dbscan, dbscan_governed, DbscanConfig};
pub use kmeans::{criterion_e, kmeans, kmeans_governed, KMeansConfig, KMeansResult};
pub use kmodes::{kmodes, kmodes_governed, KModesConfig, KModesResult};
pub use linkage::{similarity_linkage, similarity_linkage_governed, Linkage, LinkageConfig};
pub use models::{
    CentroidModel, ClaransModel, DbscanModel, KMeansModel, KModesModel, LinkageModel,
};
pub use vectorize::{euclidean, records_to_vectors, sq_euclidean, transactions_to_vectors};

#[cfg(test)]
pub(crate) mod testdata {
    use rock_core::points::Transaction;

    /// Fig. 1 / Example 1.2 data: see `rock-core`'s test fixture.
    pub(crate) fn figure1_transactions() -> Vec<Transaction> {
        let mut ts = Vec::new();
        let a = [1u32, 2, 3, 4, 5];
        for x in 0..a.len() {
            for y in (x + 1)..a.len() {
                for z in (y + 1)..a.len() {
                    ts.push(Transaction::from([a[x], a[y], a[z]]));
                }
            }
        }
        let b = [1u32, 2, 6, 7];
        for x in 0..b.len() {
            for y in (x + 1)..b.len() {
                for z in (y + 1)..b.len() {
                    ts.push(Transaction::from([b[x], b[y], b[z]]));
                }
            }
        }
        ts
    }
}

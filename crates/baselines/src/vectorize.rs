//! Boolean 0/1 encoding of categorical data (§5).
//!
//! The paper's traditional comparator "handle[s] categorical attributes by
//! converting them to boolean attributes with 0/1 values. For every
//! categorical attribute, we define a new attribute for every value in its
//! domain." Transactions are likewise 0/1 vectors over the item universe
//! (§1.1, Example 1.1). These encoders produce the dense `f64` vectors the
//! centroid-based algorithms operate on.
//!
//! Both encoders are thin fronts over the packed item-set substrate
//! ([`rock_data::packed::PackedBaskets`]) — the bit-packed rows are the
//! single source of truth for item membership, expanded to dense `f64`
//! by [`PackedBaskets::to_dense`].

use rock_core::points::{CategoricalRecord, CategoricalSchema, Transaction};
use rock_data::packed::PackedBaskets;

/// Encodes transactions as 0/1 vectors over `num_items` dimensions.
///
/// # Panics
/// Panics if a transaction contains an item id ≥ `num_items`.
pub fn transactions_to_vectors(transactions: &[Transaction], num_items: usize) -> Vec<Vec<f64>> {
    PackedBaskets::new(transactions).to_dense(num_items)
}

/// Encodes categorical records as 0/1 vectors with one dimension per
/// `(attribute, value)` pair of the schema.
///
/// Missing values leave the attribute's whole block at 0 — the natural
/// extension of the paper's encoding (and one of the reasons the
/// traditional algorithm struggles with missing-value data, §5.2).
/// Records are routed through the §3.1.2 record → transaction mapping,
/// so the encoding is definitionally consistent with the transaction
/// encoder above.
///
/// # Panics
/// Panics if a record's arity differs from the schema.
pub fn records_to_vectors(records: &[CategoricalRecord], schema: &CategoricalSchema) -> Vec<Vec<f64>> {
    let ts: Vec<Transaction> = records.iter().map(|r| schema.to_transaction(r)).collect();
    PackedBaskets::new(&ts).to_dense(schema.num_items())
}

/// Squared Euclidean distance between dense vectors.
///
/// # Panics
/// Panics if dimensions differ.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between dense vectors.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_1_encoding() {
        // §1.1 Example 1.1's four transactions over items 1..6 become the
        // exact 0/1 points the paper lists (we use 0-based item ids 0..6).
        let ts = vec![
            Transaction::from([0, 1, 2, 4]),
            Transaction::from([1, 2, 3, 4]),
            Transaction::from([0, 3]),
            Transaction::from([5]),
        ];
        let vs = transactions_to_vectors(&ts, 6);
        assert_eq!(vs[0], vec![1.0, 1.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(vs[1], vec![0.0, 1.0, 1.0, 1.0, 1.0, 0.0]);
        assert_eq!(vs[2], vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        assert_eq!(vs[3], vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        // Distance between the first two points is √2, the smallest (§1.1).
        let d01 = euclidean(&vs[0], &vs[1]);
        assert!((d01 - 2f64.sqrt()).abs() < 1e-12);
        let d23 = euclidean(&vs[2], &vs[3]);
        assert!((d23 - 3f64.sqrt()).abs() < 1e-12);
        assert!(d01 < d23);
    }

    #[test]
    fn record_encoding_blocks() {
        let schema = CategoricalSchema::from_attributes(&[
            ("color", vec!["r", "g", "b"]),
            ("size", vec!["s", "l"]),
        ]);
        let recs = vec![
            CategoricalRecord::complete(vec![1, 0]),
            CategoricalRecord::new(vec![None, Some(1)]),
        ];
        let vs = records_to_vectors(&recs, &schema);
        assert_eq!(vs[0], vec![0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(vs[1], vec![0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn item_out_of_range_panics() {
        let ts = vec![Transaction::from([9])];
        let _ = transactions_to_vectors(&ts, 5);
    }
}

//! [`ClusterModel`] adapters: every baseline behind the same trait as
//! ROCK itself.
//!
//! `rock-eval` and `rock-bench` drive clustering algorithms generically —
//! fit a model, score/tabulate its [`ModelFit`] — so each baseline gets a
//! thin adapter that owns its configuration, seeds its own RNG stream
//! (for the randomized searches), runs the governed core under the
//! model's [`RunGovernor`], and accounts for wall-clock time and outliers
//! in the returned [`rock_core::report::RunReport`].
//!
//! | Model | Data type `D` | Core driver |
//! |---|---|---|
//! | [`CentroidModel`] | `[Vec<f64>]` | [`centroid_hierarchical_governed`] |
//! | [`KMeansModel`] | `[Vec<f64>]` | [`kmeans_governed`] |
//! | [`KModesModel`] | `[CategoricalRecord]` | [`kmodes_governed`] |
//! | [`LinkageModel`] | any [`PairwiseSimilarity`] | [`similarity_linkage_governed`] |
//! | [`ClaransModel`] | any [`PairwiseSimilarity`] | [`clarans_governed`] |
//! | [`DbscanModel`] | any [`PairwiseSimilarity`] `+ Sync` | [`dbscan_governed`] |
//!
//! (`rock_core::RockModel` completes the set — ROCK over point slices.)
//!
//! The adapters return `dendrogram: None` — merge histories are not
//! tracked for the baselines; only ROCK's own engine produces a
//! replayable [`rock_core::Dendrogram`].

use rand::rngs::StdRng;
use rand::SeedableRng;
use rock_core::cluster::Clustering;
use rock_core::engine::{ClusterModel, ModelFit};
use rock_core::error::RockError;
use rock_core::governor::RunGovernor;
use rock_core::neighbors::NeighborGraph;
use rock_core::points::CategoricalRecord;
use rock_core::report::{PhaseTimer, RunReport};
use rock_core::similarity::PairwiseSimilarity;

use crate::centroid::{centroid_hierarchical_governed, CentroidConfig};
use crate::clarans::{clarans_governed, ClaransConfig};
use crate::dbscan::{dbscan_governed, DbscanConfig};
use crate::kmeans::{kmeans_governed, KMeansConfig};
use crate::kmodes::{kmodes_governed, KModesConfig};
use crate::linkage::{similarity_linkage_governed, Linkage, LinkageConfig};

/// Wraps a finished clustering into a [`ModelFit`], accounting for the
/// timed "cluster" phase and the outlier count.
fn finish(clustering: Clustering, timer: PhaseTimer, mut report: RunReport) -> ModelFit {
    timer.record(&mut report, "cluster");
    report.outliers = clustering.outliers.len() as u64;
    ModelFit {
        clustering,
        dendrogram: None,
        report,
    }
}

/// The §5 traditional comparator as a [`ClusterModel`] over dense 0/1
/// vectors (see [`crate::vectorize`]).
#[derive(Clone, Debug)]
pub struct CentroidModel {
    config: CentroidConfig,
    governor: RunGovernor,
}

impl CentroidModel {
    /// A model with the given configuration and no budgets.
    pub fn new(config: CentroidConfig) -> Self {
        CentroidModel {
            config,
            governor: RunGovernor::unlimited(),
        }
    }

    /// Runs fits under `governor` (cancellation, deadline, memory).
    #[must_use]
    pub fn with_governor(mut self, governor: RunGovernor) -> Self {
        self.governor = governor;
        self
    }
}

impl ClusterModel<[Vec<f64>]> for CentroidModel {
    fn name(&self) -> &'static str {
        "centroid"
    }

    fn fit(&self, data: &[Vec<f64>]) -> Result<ModelFit, RockError> {
        let mut report = RunReport::new();
        report.records_read = data.len() as u64;
        let timer = PhaseTimer::start();
        let clustering = centroid_hierarchical_governed(data, self.config, &self.governor)?;
        Ok(finish(clustering, timer, report))
    }
}

/// Lloyd's k-means as a [`ClusterModel`] over dense vectors.
#[derive(Clone, Debug)]
pub struct KMeansModel {
    config: KMeansConfig,
    seed: u64,
    governor: RunGovernor,
}

impl KMeansModel {
    /// A model seeding its k-means++ stream from `seed`.
    pub fn new(config: KMeansConfig, seed: u64) -> Self {
        KMeansModel {
            config,
            seed,
            governor: RunGovernor::unlimited(),
        }
    }

    /// Runs fits under `governor` (cancellation, deadline, memory).
    #[must_use]
    pub fn with_governor(mut self, governor: RunGovernor) -> Self {
        self.governor = governor;
        self
    }
}

impl ClusterModel<[Vec<f64>]> for KMeansModel {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn fit(&self, data: &[Vec<f64>]) -> Result<ModelFit, RockError> {
        let mut report = RunReport::new();
        report.records_read = data.len() as u64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let timer = PhaseTimer::start();
        let result = kmeans_governed(data, self.config, &mut rng, &self.governor)?;
        Ok(finish(result.clustering, timer, report))
    }
}

/// Huang's k-modes as a [`ClusterModel`] over categorical records.
#[derive(Clone, Debug)]
pub struct KModesModel {
    config: KModesConfig,
    seed: u64,
    governor: RunGovernor,
}

impl KModesModel {
    /// A model seeding its mode-selection stream from `seed`.
    pub fn new(config: KModesConfig, seed: u64) -> Self {
        KModesModel {
            config,
            seed,
            governor: RunGovernor::unlimited(),
        }
    }

    /// Runs fits under `governor` (cancellation, deadline, memory).
    #[must_use]
    pub fn with_governor(mut self, governor: RunGovernor) -> Self {
        self.governor = governor;
        self
    }
}

impl ClusterModel<[CategoricalRecord]> for KModesModel {
    fn name(&self) -> &'static str {
        "kmodes"
    }

    fn fit(&self, data: &[CategoricalRecord]) -> Result<ModelFit, RockError> {
        let mut report = RunReport::new();
        report.records_read = data.len() as u64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let timer = PhaseTimer::start();
        let result = kmodes_governed(data, self.config, &mut rng, &self.governor)?;
        Ok(finish(result.clustering, timer, report))
    }
}

/// MST/single-link, complete-link or group-average clustering as a
/// [`ClusterModel`] over any pairwise similarity.
#[derive(Clone, Debug)]
pub struct LinkageModel {
    config: LinkageConfig,
    governor: RunGovernor,
}

impl LinkageModel {
    /// A model with the given linkage configuration and no budgets.
    pub fn new(config: LinkageConfig) -> Self {
        LinkageModel {
            config,
            governor: RunGovernor::unlimited(),
        }
    }

    /// Runs fits under `governor` (cancellation, deadline, memory).
    #[must_use]
    pub fn with_governor(mut self, governor: RunGovernor) -> Self {
        self.governor = governor;
        self
    }
}

impl<PS: PairwiseSimilarity> ClusterModel<PS> for LinkageModel {
    fn name(&self) -> &'static str {
        match self.config.linkage {
            Linkage::Single => "single-link",
            Linkage::Complete => "complete-link",
            Linkage::Average => "group-average",
        }
    }

    fn fit(&self, data: &PS) -> Result<ModelFit, RockError> {
        let mut report = RunReport::new();
        report.records_read = data.len() as u64;
        let timer = PhaseTimer::start();
        let clustering = similarity_linkage_governed(data, self.config, &self.governor)?;
        Ok(finish(clustering, timer, report))
    }
}

/// CLARANS randomized k-medoids as a [`ClusterModel`] over any pairwise
/// similarity.
#[derive(Clone, Debug)]
pub struct ClaransModel {
    config: ClaransConfig,
    seed: u64,
    governor: RunGovernor,
}

impl ClaransModel {
    /// A model seeding its randomized search from `seed`.
    pub fn new(config: ClaransConfig, seed: u64) -> Self {
        ClaransModel {
            config,
            seed,
            governor: RunGovernor::unlimited(),
        }
    }

    /// Runs fits under `governor` (cancellation, deadline, memory).
    #[must_use]
    pub fn with_governor(mut self, governor: RunGovernor) -> Self {
        self.governor = governor;
        self
    }
}

impl<PS: PairwiseSimilarity> ClusterModel<PS> for ClaransModel {
    fn name(&self) -> &'static str {
        "clarans"
    }

    fn fit(&self, data: &PS) -> Result<ModelFit, RockError> {
        let mut report = RunReport::new();
        report.records_read = data.len() as u64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let timer = PhaseTimer::start();
        let result = clarans_governed(data, self.config, &mut rng, &self.governor)?;
        Ok(finish(result.clustering, timer, report))
    }
}

/// DBSCAN as a [`ClusterModel`]: builds the θ-neighbor graph ROCK uses
/// (a similarity threshold is an ε-radius in similarity space), then
/// grows density-connected clusters over it. Reports the graph build as
/// its own "neighbors" phase.
#[derive(Clone, Debug)]
pub struct DbscanModel {
    config: DbscanConfig,
    theta: f64,
    threads: usize,
    governor: RunGovernor,
}

impl DbscanModel {
    /// A model thresholding neighborhoods at `theta`, single-threaded.
    pub fn new(config: DbscanConfig, theta: f64) -> Self {
        DbscanModel {
            config,
            theta,
            threads: 1,
            governor: RunGovernor::unlimited(),
        }
    }

    /// Builds the neighbor graph with `threads` workers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs fits under `governor` (cancellation, deadline, memory).
    #[must_use]
    pub fn with_governor(mut self, governor: RunGovernor) -> Self {
        self.governor = governor;
        self
    }
}

impl<PS: PairwiseSimilarity + Sync> ClusterModel<PS> for DbscanModel {
    fn name(&self) -> &'static str {
        "dbscan"
    }

    fn fit(&self, data: &PS) -> Result<ModelFit, RockError> {
        let mut report = RunReport::new();
        report.records_read = data.len() as u64;
        let timer = PhaseTimer::start();
        let graph = if self.threads > 1 {
            NeighborGraph::build_parallel(data, self.theta, self.threads)
        } else {
            NeighborGraph::build(data, self.theta)
        };
        timer.record(&mut report, "neighbors");
        let timer = PhaseTimer::start();
        let clustering = dbscan_governed(&graph, self.config, &self.governor)?;
        Ok(finish(clustering, timer, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmodes::kmodes;
    use crate::vectorize::transactions_to_vectors;
    use rock_core::governor::{CancellationToken, Phase, TripReason};
    use rock_core::points::Transaction;
    use rock_core::similarity::{Jaccard, PointsWith, SimilarityMatrix};

    fn block_matrix(n: usize) -> SimilarityMatrix {
        SimilarityMatrix::from_fn(n, |i, j| {
            if (i < n / 2) == (j < n / 2) {
                0.9
            } else {
                0.1
            }
        })
    }

    #[test]
    fn centroid_model_matches_direct_call() {
        let ts: Vec<Transaction> = (0..12)
            .map(|i| {
                if i < 6 {
                    Transaction::from([1, 2, 3 + (i % 2) as u32])
                } else {
                    Transaction::from([10, 11, 12 + (i % 2) as u32])
                }
            })
            .collect();
        let vs = transactions_to_vectors(&ts, 14);
        let model = CentroidModel::new(CentroidConfig::plain(2));
        let fit = model.fit(&vs).unwrap();
        assert_eq!(
            fit.clustering,
            crate::centroid::centroid_hierarchical(&vs, CentroidConfig::plain(2))
        );
        assert_eq!(fit.report.records_read, 12);
        assert!(fit.report.phase_duration("cluster").is_some());
        assert!(fit.dendrogram.is_none());
        assert_eq!(model.name(), "centroid");
    }

    #[test]
    fn randomized_models_are_reproducible() {
        let vs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![if i < 10 { 0.0 } else { 9.0 }, (i % 3) as f64 * 0.1])
            .collect();
        let model = KMeansModel::new(KMeansConfig::new(2), 7);
        let a = model.fit(&vs).unwrap();
        let b = model.fit(&vs).unwrap();
        assert_eq!(a.clustering, b.clustering);

        let m = block_matrix(12);
        let cl = ClaransModel::new(ClaransConfig::new(2), 94);
        assert_eq!(cl.fit(&m).unwrap().clustering, cl.fit(&m).unwrap().clustering);
    }

    #[test]
    fn kmodes_model_matches_direct_call() {
        let rs: Vec<CategoricalRecord> = (0..10)
            .map(|i| CategoricalRecord::complete(vec![(i / 5) * 5, (i / 5) * 5, i % 2]))
            .collect();
        let model = KModesModel::new(KModesConfig::new(2), 11);
        let fit = model.fit(&rs).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(fit.clustering, kmodes(&rs, KModesConfig::new(2), &mut rng).clustering);
    }

    #[test]
    fn linkage_model_names_follow_the_criterion() {
        for (linkage, name) in [
            (Linkage::Single, "single-link"),
            (Linkage::Complete, "complete-link"),
            (Linkage::Average, "group-average"),
        ] {
            let model = LinkageModel::new(LinkageConfig::new(2, linkage));
            assert_eq!(ClusterModel::<SimilarityMatrix>::name(&model), name);
        }
        let m = block_matrix(8);
        let fit = LinkageModel::new(LinkageConfig::new(2, Linkage::Average))
            .fit(&m)
            .unwrap();
        assert_eq!(fit.clustering.sizes(), vec![4, 4]);
    }

    #[test]
    fn dbscan_model_reports_both_phases_and_outliers() {
        let ts = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([1, 3, 4]),
            Transaction::from([2, 3, 4]),
            Transaction::from([10, 11, 12]),
            Transaction::from([10, 11, 13]),
            Transaction::from([10, 12, 13]),
            Transaction::from([11, 12, 13]),
            Transaction::from([99]),
        ];
        let pw = PointsWith::new(&ts, Jaccard);
        let model = DbscanModel::new(DbscanConfig::new(3), 0.5);
        let fit = model.fit(&pw).unwrap();
        assert_eq!(fit.clustering.sizes(), vec![4, 4]);
        assert_eq!(fit.report.outliers, 1);
        assert!(fit.report.phase_duration("neighbors").is_some());
        assert!(fit.report.phase_duration("cluster").is_some());
        assert_eq!(fit.assignments(9)[8], None, "noise point is unassigned");
    }

    #[test]
    fn cancelled_governor_interrupts_any_model() {
        let token = CancellationToken::new();
        token.cancel();
        let g = RunGovernor::unlimited().with_cancel_token(token);
        let m = block_matrix(10);
        let err = ClaransModel::new(ClaransConfig::new(2), 1)
            .with_governor(g)
            .fit(&m)
            .unwrap_err();
        assert!(matches!(
            err,
            RockError::Interrupted {
                phase: Phase::Merge,
                reason: TripReason::Cancelled,
                ..
            }
        ));
    }
}

//! k-modes (Huang 1998): the partitional analogue of k-means for
//! categorical data.
//!
//! Included as an extra baseline beyond the paper's comparators: it
//! replaces centroids by per-attribute *modes* and Euclidean distance by
//! simple matching distance (number of attribute mismatches), so it at
//! least speaks categorical natively — but, being partitional and
//! mode-based, it still lacks ROCK's neighborhood information.
//!
//! Missing values never match and never vote for a mode.

use rand::Rng;
use rock_core::cluster::Clustering;
use rock_core::error::RockError;
use rock_core::governor::{Phase, RunGovernor};
use rock_core::points::CategoricalRecord;
use rock_core::util::FxHashMap;

/// Configuration for a k-modes run.
#[derive(Clone, Copy, Debug)]
pub struct KModesConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum reassignment sweeps.
    pub max_iters: usize,
}

impl KModesConfig {
    /// `k` clusters, up to 100 sweeps.
    pub fn new(k: usize) -> Self {
        KModesConfig { k, max_iters: 100 }
    }
}

/// Result of a k-modes run.
#[derive(Clone, Debug)]
pub struct KModesResult {
    /// The partition.
    pub clustering: Clustering,
    /// Final cluster modes (aligned with `clustering.clusters`); an
    /// attribute's mode is `None` when no member observed it.
    pub modes: Vec<CategoricalRecord>,
    /// Total simple-matching cost (mismatched attributes summed over all
    /// points).
    pub cost: u64,
    /// Sweeps performed.
    pub iterations: usize,
}

/// Simple-matching dissimilarity: the number of attributes where the
/// record and the mode differ (missing on either side counts as a
/// mismatch).
fn mismatch(record: &CategoricalRecord, mode: &CategoricalRecord) -> u64 {
    record
        .values()
        .iter()
        .zip(mode.values())
        .filter(|(a, b)| match (a, b) {
            (Some(x), Some(y)) => x != y,
            _ => true,
        })
        .count() as u64
}

/// Computes the per-attribute mode of a set of records.
fn mode_of(records: &[CategoricalRecord], members: &[u32], arity: usize) -> CategoricalRecord {
    let mut values = Vec::with_capacity(arity);
    for a in 0..arity {
        let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
        for &m in members {
            if let Some(v) = records[m as usize].value(a) {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        // Deterministic mode: highest count, smallest value on ties.
        // Canonicalise the hash-map contents with a total sort so the
        // winner never depends on iteration order.
        let mut tallies: Vec<(u32, usize)> = counts.into_iter().collect();
        tallies.sort_unstable_by(|(va, ca), (vb, cb)| cb.cmp(ca).then(va.cmp(vb)));
        values.push(tallies.first().map(|&(v, _)| v));
    }
    CategoricalRecord::new(values)
}

/// Runs k-modes with random distinct seeding and Lloyd-style sweeps.
///
/// # Panics
/// Panics if `records` is empty, arities differ, `k == 0`, or
/// `k > records.len()`.
pub fn kmodes<R: Rng + ?Sized>(
    records: &[CategoricalRecord],
    config: KModesConfig,
    rng: &mut R,
) -> KModesResult {
    // tidy-allow(panic): an unlimited governor never trips
    kmodes_governed(records, config, rng, &RunGovernor::unlimited())
        .expect("an unlimited governor never trips")
}

/// As [`kmodes`], under a [`RunGovernor`]: the budgets and cancellation
/// token are checked at every reassignment sweep.
///
/// # Errors
/// [`RockError::Interrupted`] when the governor trips.
///
/// # Panics
/// As [`kmodes`] on invalid input.
pub fn kmodes_governed<R: Rng + ?Sized>(
    records: &[CategoricalRecord],
    config: KModesConfig,
    rng: &mut R,
    governor: &RunGovernor,
) -> Result<KModesResult, RockError> {
    let n = records.len();
    assert!(n > 0, "cannot cluster zero records");
    let arity = records[0].arity();
    assert!(
        records.iter().all(|r| r.arity() == arity),
        "records must share a schema"
    );
    assert!(
        config.k >= 1 && config.k <= n,
        "k must be in 1..=n, got {}",
        config.k
    );

    // Seed with k random records, preferring *distinct* records (Huang's
    // recommendation) — identical modes make every tie fall to the first
    // cluster and starve the rest. Falls back to duplicates when the data
    // has fewer than k distinct records.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    let mut modes: Vec<CategoricalRecord> = Vec::with_capacity(config.k);
    for &i in &order {
        if modes.len() == config.k {
            break;
        }
        if !modes.contains(&records[i]) {
            modes.push(records[i].clone());
        }
    }
    for &i in &order {
        if modes.len() == config.k {
            break;
        }
        modes.push(records[i].clone());
    }

    let mut assign: Vec<usize> = vec![0; n];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        governor.check_at(Phase::Merge, iter as u64)?;
        iterations = iter + 1;
        let mut changes = 0usize;
        for (i, r) in records.iter().enumerate() {
            let mut best = (u64::MAX, 0usize);
            for (c, m) in modes.iter().enumerate() {
                let d = mismatch(r, m);
                if d < best.0 {
                    best = (d, c);
                }
            }
            if assign[i] != best.1 {
                assign[i] = best.1;
                changes += 1;
            }
        }
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); config.k];
        for (i, &c) in assign.iter().enumerate() {
            groups[c].push(i as u32);
        }
        for (c, members) in groups.iter().enumerate() {
            if !members.is_empty() {
                modes[c] = mode_of(records, members, arity);
            }
        }
        if changes == 0 {
            break;
        }
    }

    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); config.k];
    for (i, &c) in assign.iter().enumerate() {
        clusters[c].push(i as u32);
    }
    let cost: u64 = records
        .iter()
        .zip(&assign)
        .map(|(r, &c)| mismatch(r, &modes[c]))
        .sum();
    let clustering = Clustering::new(clusters, Vec::new());
    let modes_ordered = clustering
        .clusters
        .iter()
        .map(|members| mode_of(records, members, arity))
        .collect();
    Ok(KModesResult {
        clustering,
        modes: modes_ordered,
        cost,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rec(vals: &[u32]) -> CategoricalRecord {
        CategoricalRecord::complete(vals.to_vec())
    }

    fn two_pattern_records() -> Vec<CategoricalRecord> {
        let mut rs = Vec::new();
        for i in 0..10u32 {
            rs.push(rec(&[0, 0, 0, i % 2])); // pattern A
            rs.push(rec(&[5, 5, 5, i % 3])); // pattern B
        }
        rs
    }

    #[test]
    fn separates_patterns() {
        let rs = two_pattern_records();
        let mut rng = StdRng::seed_from_u64(11);
        let r = kmodes(&rs, KModesConfig::new(2), &mut rng);
        assert_eq!(r.clustering.sizes(), vec![10, 10]);
        for cl in &r.clustering.clusters {
            let even: std::collections::HashSet<bool> =
                cl.iter().map(|&p| p % 2 == 0).collect();
            assert_eq!(even.len(), 1, "patterns must not mix");
        }
    }

    #[test]
    fn modes_reflect_majority() {
        let rs = two_pattern_records();
        let mut rng = StdRng::seed_from_u64(11);
        let r = kmodes(&rs, KModesConfig::new(2), &mut rng);
        for m in &r.modes {
            let first = m.value(0).unwrap();
            assert!(first == 0 || first == 5);
            assert_eq!(m.value(1).unwrap(), first);
        }
    }

    #[test]
    fn mismatch_counts_missing_as_mismatch() {
        let a = CategoricalRecord::new(vec![Some(1), None, Some(2)]);
        let b = CategoricalRecord::new(vec![Some(1), Some(0), None]);
        assert_eq!(mismatch(&a, &b), 2);
        assert_eq!(mismatch(&a, &a), 1, "missing never matches, even itself");
    }

    #[test]
    fn perfect_fit_has_zero_cost_with_restarts() {
        // k-modes is a local-search method; like k-means it is restarted
        // and the lowest-cost run kept.
        let rs = vec![rec(&[1, 2]), rec(&[1, 2]), rec(&[3, 4]), rec(&[3, 4])];
        let best = (0..8)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                kmodes(&rs, KModesConfig::new(2), &mut rng).cost
            })
            .min()
            .unwrap();
        assert_eq!(best, 0);
    }

    #[test]
    #[should_panic(expected = "share a schema")]
    fn arity_mismatch_panics() {
        let rs = vec![rec(&[1]), rec(&[1, 2])];
        let mut rng = StdRng::seed_from_u64(5);
        let _ = kmodes(&rs, KModesConfig::new(1), &mut rng);
    }
}

//! Acceptance tests for the call-graph gate: deliberately breaking the
//! real workspace — in memory, never on disk — must trip the deep rule
//! families. These are the checks that keep the analysis honest: a
//! refactor that quietly stops resolving calls or tracking guards would
//! let these seeded regressions through and fail here.

use rock_tidy::{check_sources, load_source, Diagnostic, SourceFile};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// A workspace-relative path plus the in-memory patch to apply to it.
type Patch<'a> = (&'a str, &'a dyn Fn(&str) -> String);

/// Loads the real workspace, then re-loads each `(rel, patch)` file with
/// its patch applied to the raw text, and runs the full pass.
fn check_patched(patches: &[Patch<'_>]) -> Vec<Diagnostic> {
    let root = workspace_root();
    let mut files: Vec<SourceFile> =
        rock_tidy::load_workspace(&root).expect("walking the workspace");
    for (rel, patch) in patches {
        let raw = std::fs::read_to_string(root.join(rel))
            .unwrap_or_else(|e| panic!("reading {rel}: {e}"));
        let patched = patch(&raw);
        assert_ne!(patched, raw, "the patch must change {rel}");
        let slot = files
            .iter_mut()
            .find(|f| f.rel == *rel)
            .unwrap_or_else(|| panic!("{rel} not in the workspace pass"));
        let (kind, crate_name) = rock_tidy::classify(rel).expect("patched file must classify");
        *slot = load_source(rel, kind, crate_name, &patched);
    }
    check_sources(&files)
}

#[test]
fn unpatched_workspace_is_clean() {
    // The baseline the regression tests below perturb.
    let files = rock_tidy::load_workspace(&workspace_root()).expect("walking the workspace");
    let diags = check_sources(&files);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn transitive_unwrap_reachable_from_the_engine_fails_the_gate() {
    // Plant an unannotated unwrap in the retry helper and a call to it
    // in the shard supervisor: the panic site is a different file from
    // the protected root, so only the call-graph walk can connect them.
    let helper = |raw: &str| {
        format!(
            "{raw}\n/// Planted helper.\npub fn rogue_backoff(ms: Option<u64>) -> u64 {{\n    \
             ms.unwrap()\n}}\n"
        )
    };
    let caller = |raw: &str| {
        format!(
            "{raw}\n/// Planted call into the helper.\npub fn rogue_schedule() -> u64 {{\n    \
             crate::util::retry::rogue_backoff(None)\n}}\n"
        )
    };
    let diags = check_patched(&[
        ("crates/core/src/util/retry.rs", &helper),
        ("crates/core/src/engine/supervisor.rs", &caller),
    ]);
    // The per-line rule catches the site itself…
    assert!(
        diags.iter().any(|d| d.rule == "panic" && d.file.ends_with("retry.rs")),
        "{diags:#?}"
    );
    // …and the deep pass proves reachability from protected code,
    // reporting the call chain.
    let reach: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == "panic-reach" && d.file.ends_with("retry.rs"))
        .collect();
    assert!(
        reach.iter().any(|d| d.message.contains("->")),
        "panic-reach must report the call chain; got {diags:#?}"
    );
}

#[test]
fn swapped_lock_acquisitions_in_serve_fail_the_gate() {
    // Reverse the two acquisitions in `lifetime_stats` (text-level swap
    // of the lock field names): the reversed order now coexists with
    // `record_batch`'s stats → degradations order, a cycle — which no
    // tidy-allow can excuse.
    let swap = |raw: &str| {
        let start = raw
            .find("pub fn lifetime_stats")
            .expect("lifetime_stats in serve.rs");
        let end = start
            + raw[start..]
                .find("\n    }")
                .expect("end of lifetime_stats body");
        let body = &raw[start..end];
        assert!(
            body.contains("self.stats.lock") && body.contains("self.degradations.lock"),
            "expected both acquisitions inside lifetime_stats"
        );
        let swapped = body
            .replace("self.stats.lock", "self.__tmp.lock")
            .replace("self.degradations.lock", "self.stats.lock")
            .replace("self.__tmp.lock", "self.degradations.lock");
        format!("{}{}{}", &raw[..start], swapped, &raw[end..])
    };
    let diags = check_patched(&[("crates/core/src/serve.rs", &swap)]);
    let cycles: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == "lock-order" && d.message.contains("cycle"))
        .collect();
    assert!(
        cycles
            .iter()
            .any(|d| d.message.contains("stats") && d.message.contains("degradations")),
        "swapping the acquisitions must surface a lock-order cycle; got {diags:#?}"
    );
}

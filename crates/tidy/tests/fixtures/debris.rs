//! Fixture: seeds exactly one `debris` violation (a committed `dbg!`).

pub fn trace(x: u32) -> u32 {
    dbg!(x)
}

//! Seeded violation: a nested lock acquisition with no stated order
//! invariant — scan as `crates/core/src/serve.rs`.
use std::sync::Mutex;

/// Two independent locks.
pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    /// Touches both counters under both guards.
    pub fn both(&self) {
        let a = self.first.lock();
        let b = self.second.lock();
        let _ = (a, b);
    }
}

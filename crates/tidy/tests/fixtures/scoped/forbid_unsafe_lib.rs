//! A crate root missing `#![forbid(unsafe_code)]` — scan this fixture
//! as `crates/<name>/src/lib.rs` to make the forbid-unsafe rule fire.

pub fn f() {}

//! Seeded violation: a marked hot loop whose enclosing function never
//! reaches a `perf::count_*` increment — scan as core library code.

/// Sums rows without metering the work.
pub fn kernel(rows: &[u32]) -> u64 {
    let mut total = 0u64;
    // tidy:kernel-hot-loop — unmetered sum
    for r in rows {
        total += u64::from(*r);
    }
    // tidy:end-kernel-hot-loop
    total
}

//! Seeded violation: an error variant nothing constructs and no test
//! names — scan as `crates/core/src/error.rs`.

/// The error enum as the error-coverage rule sees it.
pub enum RockError {
    /// Planted: never constructed in library code, never tested.
    Orphaned,
}

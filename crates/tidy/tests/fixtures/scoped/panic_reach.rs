//! Seeded violation: unannotated indexing directly inside a protected
//! serve-path function — scan as `crates/core/src/serve.rs`.

/// Returns the first element; panics on an empty slice.
pub fn first(v: &[u32]) -> u32 {
    v[0]
}

//! Fixture: seeds exactly one `nondeterministic-iter` violation (hash
//! map iteration with no nearby sort and no annotation).

use std::collections::HashMap;

pub fn cluster_sizes(links: &HashMap<u32, Vec<u32>>) -> Vec<usize> {
    let mut sizes = Vec::new();
    for (_, members) in links.iter() {
        sizes.push(members.len());
    }
    sizes
}

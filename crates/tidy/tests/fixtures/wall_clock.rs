//! Fixture: seeds exactly one `wall-clock` violation (an `Instant::now`
//! outside the sanctioned timing modules).

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

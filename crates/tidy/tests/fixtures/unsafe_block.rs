//! Fixture: seeds exactly one `unsafe-block` violation (an `unsafe`
//! occurrence with no adjacent `// SAFETY:` comment).

pub fn reinterpret(x: &u64) -> &i64 {
    unsafe { &*(x as *const u64 as *const i64) }
}

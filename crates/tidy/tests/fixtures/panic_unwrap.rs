//! Fixture: seeds exactly one `panic` violation (an `.unwrap()` in
//! library code). Excluded from the workspace pass by `classify`.

pub fn first_member(members: &[Option<Vec<u32>>]) -> &Vec<u32> {
    members[0].as_ref().unwrap()
}

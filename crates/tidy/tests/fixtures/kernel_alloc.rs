//! Fixture: seeds exactly one `kernel-alloc` violation (a per-iteration
//! Vec construction inside a marked kernel hot-loop region).

pub fn scatter(rows: &[Vec<u32>]) -> usize {
    let mut total = 0;
    // tidy:kernel-hot-loop — per-row scatter
    for row in rows {
        let copy = row.to_vec();
        total += copy.len();
    }
    // tidy:end-kernel-hot-loop
    total
}

//! Fixture: seeds exactly one `file-io` violation (filesystem access
//! outside the sanctioned durability boundary modules).

pub fn slurp(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

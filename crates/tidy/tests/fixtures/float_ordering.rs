//! Fixture: seeds exactly one `float-ordering` violation (a
//! `partial_cmp` in an ordering path instead of `total_cmp`).

pub fn sort_by_goodness(xs: &mut [(u32, f64)]) {
    xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
}

//! Fixture: seeds exactly one `annotation` violation (a `tidy-allow`
//! naming a rule that does not exist).

pub fn noop() {
    // tidy-allow(made-up-rule): this rule name is not in the catalog
}

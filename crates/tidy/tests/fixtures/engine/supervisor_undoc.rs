//! Seeded violation: an undocumented public API on a supervisor file.

pub fn quarantine_shard(shard: usize) -> usize {
    shard
}

//! Seeded violation: a library file importing a crate outside the
//! vendored shim set (the workspace builds offline; see shims/).
use serde::Serialize;

/// Would silently require registry access to compile.
pub fn export() {}

//! Rule-level tests over the seeded-violation fixtures.
//!
//! Each file under `tests/fixtures/` plants exactly one violation; these
//! tests scan them under a library classification and assert that the
//! expected rule — and only that rule — fires, at the expected line.
//! The flip side (annotated or restructured sites passing) is covered by
//! the `clean_*` tests below.

use rock_tidy::{check_file, check_sources, load_source, Diagnostic, FileKind};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Scans fixture `name` as if it lived at `rel` in crate `crate_name`,
/// through the full pass — per-file rules *plus* the call-graph deep
/// families (the fixtures under `scoped/` only fire at a specific path).
fn scan_scoped(name: &str, rel: &str, crate_name: &str) -> Vec<Diagnostic> {
    let file = load_source(rel, FileKind::Lib, crate_name.to_string(), &fixture(name));
    check_sources(&[file])
}

/// Scans fixture `name` as if it were rock-core library code.
fn scan_as_core_lib(name: &str) -> Vec<Diagnostic> {
    let text = fixture(name);
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        &text,
    );
    check_file(&file)
}

/// Asserts `diags` is exactly one violation of `rule` at `line`.
fn assert_single(diags: &[Diagnostic], rule: &str, line: usize) {
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one {rule} violation, got: {diags:#?}"
    );
    assert_eq!(diags[0].rule, rule);
    assert_eq!(diags[0].line, line, "wrong line: {diags:#?}");
}

#[test]
fn fixture_panic_unwrap() {
    assert_single(&scan_as_core_lib("panic_unwrap.rs"), "panic", 5);
}

#[test]
fn fixture_nondeterministic_iter() {
    assert_single(
        &scan_as_core_lib("nondeterministic_iter.rs"),
        "nondeterministic-iter",
        8,
    );
}

#[test]
fn fixture_wall_clock() {
    assert_single(&scan_as_core_lib("wall_clock.rs"), "wall-clock", 7);
}

#[test]
fn fixture_file_io() {
    assert_single(&scan_as_core_lib("file_io.rs"), "file-io", 5);
}

#[test]
fn file_io_is_sanctioned_in_boundary_modules() {
    let src = "pub fn load(p: &std::path::Path) -> std::io::Result<Vec<u8>> {\n    \
               std::fs::read(p)\n}\n";
    for rel in ["crates/core/src/wal.rs", "crates/core/src/artifact.rs"] {
        let file = load_source(rel, FileKind::Lib, "core".to_string(), src);
        let diags: Vec<_> = check_file(&file)
            .into_iter()
            .filter(|d| d.rule == "file-io")
            .collect();
        assert!(diags.is_empty(), "{rel} is a sanctioned boundary: {diags:#?}");
    }
    // The same code elsewhere in rock-core violates; other crates are
    // out of the rule's scope entirely.
    let file = load_source(
        "crates/core/src/serve.rs",
        FileKind::Lib,
        "core".to_string(),
        src,
    );
    assert!(check_file(&file).iter().any(|d| d.rule == "file-io"));
    let file = load_source(
        "crates/data/src/basketio.rs",
        FileKind::Lib,
        "data".to_string(),
        src,
    );
    assert!(!check_file(&file).iter().any(|d| d.rule == "file-io"));
}

#[test]
fn fixture_float_ordering() {
    assert_single(&scan_as_core_lib("float_ordering.rs"), "float-ordering", 5);
}

#[test]
fn fixture_unsafe_block() {
    assert_single(&scan_as_core_lib("unsafe_block.rs"), "unsafe-block", 5);
}

#[test]
fn fixture_debris() {
    assert_single(&scan_as_core_lib("debris.rs"), "debris", 4);
}

#[test]
fn fixture_bad_annotation() {
    assert_single(&scan_as_core_lib("bad_annotation.rs"), "annotation", 5);
}

#[test]
fn fixture_kernel_alloc() {
    assert_single(&scan_as_core_lib("kernel_alloc.rs"), "kernel-alloc", 8);
}

#[test]
fn kernel_alloc_ignores_code_outside_regions_and_honours_allow() {
    // Allocation outside any marked region is not the rule's business.
    let outside = "pub fn f(rows: &[Vec<u32>]) -> Vec<u32> {\n    \
                   rows.concat().to_vec()\n}\n";
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        outside,
    );
    assert!(check_file(&file).is_empty());

    // Inside a region, a reasoned tidy-allow exempts the site.
    let allowed = "pub fn f(rows: &[Vec<u32>]) -> usize {\n    \
                   let mut total = 0;\n    \
                   // tidy:kernel-hot-loop — per-shard walk\n    \
                   for row in rows {\n        \
                   // tidy-allow(kernel-alloc): one buffer per shard, not per element\n        \
                   let copy = row.to_vec();\n        \
                   total += copy.len();\n    \
                   }\n    \
                   // tidy:end-kernel-hot-loop\n    \
                   total\n}\n";
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        allowed,
    );
    assert!(check_file(&file).is_empty());
}

#[test]
fn kernel_alloc_unclosed_region_is_a_violation() {
    let src = "pub fn f() {\n    \
               // tidy:kernel-hot-loop — forgot the end marker\n    \
               let _x = 1;\n}\n";
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        src,
    );
    assert_single(&check_file(&file), "kernel-alloc", 2);
}

#[test]
fn forbid_unsafe_fires_on_bare_lib_root() {
    // Any lib.rs without the attribute violates; reuse a fixture body.
    let file = load_source(
        "crates/fake/src/lib.rs",
        FileKind::Lib,
        "fake".to_string(),
        "//! A crate.\npub fn f() {}\n",
    );
    let diags: Vec<_> = check_file(&file)
        .into_iter()
        .filter(|d| d.rule == "forbid-unsafe")
        .collect();
    assert_single(&diags, "forbid-unsafe", 1);
}

#[test]
fn shim_doc_fires_on_undocumented_shim() {
    let file = load_source(
        "shims/fake/src/lib.rs",
        FileKind::Shim,
        "shims/fake".to_string(),
        "//! Some crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    let diags: Vec<_> = check_file(&file)
        .into_iter()
        .filter(|d| d.rule == "shim-doc")
        .collect();
    assert_single(&diags, "shim-doc", 1);
}

#[test]
fn annotation_without_reason_does_not_exempt() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // tidy-allow(panic)\n    x.unwrap()\n}\n";
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        src,
    );
    let diags = check_file(&file);
    // Both the reasonless annotation and the unexempted site report.
    assert!(diags.iter().any(|d| d.rule == "annotation"), "{diags:#?}");
    assert!(diags.iter().any(|d| d.rule == "panic"), "{diags:#?}");
}

#[test]
fn reasoned_annotation_exempts_the_site() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
               // tidy-allow(panic): caller guarantees Some by construction\n    \
               x.unwrap()\n}\n";
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        src,
    );
    assert!(check_file(&file).is_empty());
}

#[test]
fn sort_within_window_passes_hash_iteration() {
    let src = "use std::collections::HashMap;\n\
               pub fn keys(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
               let mut ks: Vec<u32> = m.keys().copied().collect();\n    \
               ks.sort_unstable();\n    \
               ks\n}\n";
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        src,
    );
    assert!(check_file(&file).is_empty());
}

#[test]
fn cfg_test_code_is_exempt_from_lib_rules() {
    let src = "pub fn lib() {}\n\
               #[cfg(test)]\n\
               mod tests {\n    \
               #[test]\n    \
               fn t() {\n        \
               Some(1).unwrap();\n    \
               }\n}\n";
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        src,
    );
    assert!(check_file(&file).is_empty());
}

#[test]
fn patterns_in_strings_and_comments_do_not_fire() {
    let src = "pub fn f() -> &'static str {\n    \
               // .unwrap() and Instant::now in a comment are fine\n    \
               \".unwrap() inside a string is fine too\"\n}\n";
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        src,
    );
    assert!(check_file(&file).is_empty());
}

#[test]
fn fixture_shims_confined() {
    assert_single(&scan_as_core_lib("shims_confined.rs"), "shims-confined", 3);
}

#[test]
fn fixture_panic_reach() {
    assert_single(
        &scan_scoped("scoped/panic_reach.rs", "crates/core/src/serve.rs", "core"),
        "panic-reach",
        6,
    );
}

#[test]
fn fixture_lock_order() {
    assert_single(
        &scan_scoped("scoped/lock_order.rs", "crates/core/src/serve.rs", "core"),
        "lock-order",
        15,
    );
}

#[test]
fn fixture_counter_coverage() {
    assert_single(
        &scan_scoped("scoped/counter_coverage.rs", "crates/core/src/links.rs", "core"),
        "counter-coverage",
        7,
    );
}

#[test]
fn fixture_error_coverage() {
    assert_single(
        &scan_scoped("scoped/error_coverage.rs", "crates/core/src/error.rs", "core"),
        "error-coverage",
        7,
    );
}

#[test]
fn fixture_forbid_unsafe() {
    let diags: Vec<_> = scan_scoped(
        "scoped/forbid_unsafe_lib.rs",
        "crates/fake/src/lib.rs",
        "fake",
    )
    .into_iter()
    .filter(|d| d.rule == "forbid-unsafe")
    .collect();
    assert_single(&diags, "forbid-unsafe", 1);
}

/// The meta-check behind the fixture suite: every rule that supports a
/// `tidy-allow` escape must keep at least one failing fixture under
/// `tests/fixtures/`, so adding a rule without a fixture — or silently
/// breaking a rule so its fixture passes — fails this test rather than
/// going unnoticed.
#[test]
fn every_allowable_rule_has_a_failing_fixture() {
    let registry: &[(&str, &str, &str, &str)] = &[
        ("panic", "panic_unwrap.rs", "crates/core/src/fixture.rs", "core"),
        (
            "nondeterministic-iter",
            "nondeterministic_iter.rs",
            "crates/core/src/fixture.rs",
            "core",
        ),
        ("wall-clock", "wall_clock.rs", "crates/core/src/fixture.rs", "core"),
        ("float-ordering", "float_ordering.rs", "crates/core/src/fixture.rs", "core"),
        ("file-io", "file_io.rs", "crates/core/src/fixture.rs", "core"),
        ("unsafe-block", "unsafe_block.rs", "crates/core/src/fixture.rs", "core"),
        (
            "forbid-unsafe",
            "scoped/forbid_unsafe_lib.rs",
            "crates/fake/src/lib.rs",
            "fake",
        ),
        ("debris", "debris.rs", "crates/core/src/fixture.rs", "core"),
        ("kernel-alloc", "kernel_alloc.rs", "crates/core/src/fixture.rs", "core"),
        ("panic-reach", "scoped/panic_reach.rs", "crates/core/src/serve.rs", "core"),
        ("lock-order", "scoped/lock_order.rs", "crates/core/src/serve.rs", "core"),
        (
            "counter-coverage",
            "scoped/counter_coverage.rs",
            "crates/core/src/links.rs",
            "core",
        ),
        (
            "error-coverage",
            "scoped/error_coverage.rs",
            "crates/core/src/error.rs",
            "core",
        ),
        ("shims-confined", "shims_confined.rs", "crates/core/src/fixture.rs", "core"),
    ];
    for rule in rock_tidy::rules::ALLOWABLE_RULES {
        let (_, name, rel, krate) = registry
            .iter()
            .find(|(r, ..)| r == rule)
            .unwrap_or_else(|| {
                panic!(
                    "rule `{rule}` has no registered failing fixture — seed one under \
                     tests/fixtures/ and register it in this table"
                )
            });
        let diags = scan_scoped(name, rel, krate);
        assert!(
            diags.iter().any(|d| d.rule == *rule),
            "fixture `{name}` must fail rule `{rule}`; got {diags:#?}"
        );
    }
}

/// Scans `src` as if it lived inside `crates/core/src/engine/`.
fn scan_as_engine(src: &str) -> Vec<Diagnostic> {
    let file = load_source(
        "crates/core/src/engine/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        src,
    );
    check_file(&file)
}

#[test]
fn engine_contract_rejects_panic_even_with_allow() {
    let src = "/// Doc.\npub fn f(x: Option<u32>) -> u32 {\n    \
               // tidy-allow(panic): caller guarantees Some by construction\n    \
               x.unwrap()\n}\n";
    let diags = scan_as_engine(src);
    // The annotation exempts the `panic` rule but not the engine contract.
    assert!(diags.iter().all(|d| d.rule != "panic"), "{diags:#?}");
    assert_single(&diags, "engine-contract", 4);
}

#[test]
fn engine_contract_requires_docs_on_pub_items() {
    let src = "pub struct Undocumented;\n";
    assert_single(&scan_as_engine(src), "engine-contract", 1);
}

#[test]
fn engine_contract_accepts_documented_attributed_items() {
    let src = "/// A documented stage.\n\
               #[derive(Clone, Debug)]\n\
               pub struct Documented {\n    \
               field: u32,\n}\n";
    assert!(scan_as_engine(src).is_empty());
}

#[test]
fn engine_contract_has_no_allow_escape() {
    // Naming the rule in a tidy-allow is itself an annotation violation.
    let src = "/// Doc.\n\
               // tidy-allow(engine-contract): trying to opt out\n\
               pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let diags = scan_as_engine(src);
    assert!(diags.iter().any(|d| d.rule == "annotation"), "{diags:#?}");
    assert!(diags.iter().any(|d| d.rule == "engine-contract"), "{diags:#?}");
}

#[test]
fn engine_contract_auto_covers_new_engine_files() {
    // The rule keys on the directory, not a file list: a file added to
    // the engine later — here the shard supervisor — is covered without
    // touching rock-tidy, and an undocumented public API fires at its
    // declaration line.
    let text = fixture("engine/supervisor_undoc.rs");
    let file = load_source(
        "crates/core/src/engine/supervisor.rs",
        FileKind::Lib,
        "core".to_string(),
        &text,
    );
    assert_single(&check_file(&file), "engine-contract", 3);
}

#[test]
fn engine_contract_only_applies_under_engine_dir() {
    let src = "pub struct Undocumented;\n";
    let file = load_source(
        "crates/core/src/fixture.rs",
        FileKind::Lib,
        "core".to_string(),
        src,
    );
    assert!(check_file(&file).is_empty());
}

#[test]
fn nondeterministic_iter_covers_baselines_crate() {
    let src = "use std::collections::HashMap;\n\
               pub fn keys(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
               m.keys().copied().collect()\n}\n";
    let file = load_source(
        "crates/baselines/src/fixture.rs",
        FileKind::Lib,
        "baselines".to_string(),
        src,
    );
    let diags: Vec<_> = check_file(&file)
        .into_iter()
        .filter(|d| d.rule == "nondeterministic-iter")
        .collect();
    assert_single(&diags, "nondeterministic-iter", 3);
}

#[test]
fn safety_comment_satisfies_unsafe_audit() {
    let src = "pub fn f(x: &u64) -> &i64 {\n    \
               // SAFETY: u64 and i64 have identical size and alignment.\n    \
               unsafe { &*(x as *const u64 as *const i64) }\n}\n";
    let file = load_source(
        "shims/fake/src/util.rs",
        FileKind::Shim,
        "shims/fake".to_string(),
        src,
    );
    assert!(check_file(&file).is_empty());
}

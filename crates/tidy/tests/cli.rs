//! Exit-code contract of the `rock-tidy` binary: 0 on a clean
//! workspace, 1 on violations (including every seeded fixture via
//! `--file`), 2 on usage errors.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rock-tidy"))
}

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn ci_mode_exits_zero_on_the_workspace() {
    let out = bin()
        .arg("--ci")
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("running rock-tidy");
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn ci_mode_exits_nonzero_on_every_fixture() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures");
    let mut checked = 0;
    for entry in std::fs::read_dir(&fixtures).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let out = bin()
            .arg("--ci")
            .arg("--file")
            .arg(&path)
            .output()
            .expect("running rock-tidy");
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {} must fail the pass\nstdout: {}",
            path.display(),
            String::from_utf8_lossy(&out.stdout)
        );
        checked += 1;
    }
    assert!(checked >= 7, "expected at least 7 fixtures, saw {checked}");
}

#[test]
fn json_report_is_machine_readable() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("panic_unwrap.rs");
    let out = bin()
        .arg("--json")
        .arg("--file")
        .arg(&fixture)
        .output()
        .expect("running rock-tidy");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "not JSON: {stdout}");
    assert!(stdout.contains("\"rule\":\"panic\""), "{stdout}");
    assert!(stdout.contains("\"line\":5"), "{stdout}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = bin().arg("--bogus").output().expect("running rock-tidy");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_rule_name_is_a_usage_error() {
    // A typo'd filter must be a hard error, not a silently clean pass.
    let out = bin()
        .arg("--rule")
        .arg("panics")
        .output()
        .expect("running rock-tidy");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule `panics`"), "{stderr}");
    assert!(stderr.contains("panic-reach"), "must list known rules: {stderr}");
}

#[test]
fn deep_rule_filter_runs_on_the_workspace() {
    // `--rule panic-reach` is a known filter and the shipped workspace
    // passes it — the README's static-analysis quickstart invocation.
    let out = bin()
        .args(["--ci", "--rule", "panic-reach", "--root"])
        .arg(workspace_root())
        .output()
        .expect("running rock-tidy");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

//! The self-test: the workspace this crate ships in must pass its own
//! static-analysis pass with zero violations. Every allowlisted site
//! carries a reasoned `tidy-allow`, every shim is documented, every lib
//! root forbids unsafe — and CI runs the binary (`--ci`) before the
//! build, so this test and the CI gate can only drift together.

use std::path::Path;

#[test]
fn workspace_passes_tidy_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let diags = rock_tidy::run_workspace(&root).expect("walking the workspace");
    assert!(
        diags.is_empty(),
        "the workspace must be tidy-clean; found:\n{}",
        diags
            .iter()
            .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixtures_are_excluded_from_the_workspace_pass() {
    // The seeded-violation fixtures live inside the workspace tree; the
    // clean pass above only means anything if they are truly skipped.
    assert_eq!(
        rock_tidy::classify("crates/tidy/tests/fixtures/panic_unwrap.rs"),
        None
    );
    assert_eq!(
        rock_tidy::classify("crates/tidy/tests/rules.rs"),
        None
    );
}

//! `rock-tidy` — the workspace's static-analysis pass.
//!
//! PRs 2–3 made bit-identical clustering (across thread counts, crashes
//! and resumes) the repo's core guarantee, but property tests only catch
//! a nondeterminism *after* it ships. This crate turns the underlying
//! invariants into machine-checked rules, rustc-`tidy` style: a
//! zero-dependency binary walks the workspace sources and enforces the
//! catalog in [`rules`] —
//!
//! * **determinism** — no hash-ordered iteration feeding output, merge
//!   order or WAL bytes in `rock-core`; no wall-clock reads outside the
//!   timing modules; float orderings via `total_cmp`;
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!` in library code of
//!   the checked crates (fallible paths return `RockError`);
//! * **unsafe audit** — `#![forbid(unsafe_code)]` on every library root,
//!   `// SAFETY:` on every `unsafe` occurrence anywhere;
//! * **hygiene** — no committed `dbg!`/`todo!`, shims document their
//!   vendored API subset, CHANGES.md carries an entry per PR;
//! * **engine contract** — the staged pipeline engine
//!   (`crates/core/src/engine/**`) is panic-free with *no* `tidy-allow`
//!   escape hatch, and every public engine item is documented.
//!
//! Sites that are sound for a reason the checker cannot see carry a
//! `// tidy-allow(<rule>): <reason>` annotation; the reason is mandatory
//! and annotations naming unknown rules are themselves violations. See
//! DESIGN.md § "Static invariants" for the catalog and grammar.
//!
//! Run `cargo run -p rock-tidy -- --ci` (CI does, before the build).

#![forbid(unsafe_code)]

pub mod deep;
pub mod graph;
pub mod items;
pub mod lex;
pub mod rules;
pub mod scan;

pub use rules::{check_file, Diagnostic, FileKind, SourceFile};

use std::fs;
use std::path::{Path, PathBuf};

/// Classifies a workspace-relative path; `None` means "not checked"
/// (non-Rust files, build output, and the seeded-violation fixtures that
/// exist precisely to fail these rules).
pub fn classify(rel: &str) -> Option<(FileKind, String)> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let mut parts = rel.split('/');
    match parts.next()? {
        "target" | ".git" => None,
        "crates" => {
            let krate = parts.next()?;
            match parts.next()? {
                // The fixture files under crates/tidy/tests/fixtures each
                // seed one violation on purpose; the rule tests scan them
                // explicitly, the workspace pass must not.
                "tests" if krate == "tidy" => None,
                "src" => {
                    if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
                        Some((FileKind::Bin, krate.to_string()))
                    } else {
                        Some((FileKind::Lib, krate.to_string()))
                    }
                }
                "tests" | "examples" | "benches" => {
                    Some((FileKind::TestOrExample, krate.to_string()))
                }
                _ => None,
            }
        }
        "shims" => {
            let krate = parts.next()?;
            match parts.next()? {
                "src" => Some((FileKind::Shim, format!("shims/{krate}"))),
                "tests" => Some((FileKind::TestOrExample, format!("shims/{krate}"))),
                _ => None,
            }
        }
        "src" => Some((FileKind::Lib, "rock".to_string())),
        "tests" | "examples" | "benches" => Some((FileKind::TestOrExample, "rock".to_string())),
        _ => None,
    }
}

/// Reads and scans one file into a [`SourceFile`] ready for checking.
pub fn load_source(rel: &str, kind: FileKind, crate_name: String, text: &str) -> SourceFile {
    let lines = scan::scan(text);
    let in_test = scan::test_regions(&lines);
    SourceFile {
        rel: rel.to_string(),
        kind,
        crate_name,
        lines,
        in_test,
    }
}

/// Recursively collects every checkable `.rs` file under `root`.
fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Loads every checkable file of the workspace at `root` into memory.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Some((kind, crate_name)) = classify(&rel) else {
            continue;
        };
        let text = fs::read_to_string(&path)?;
        files.push(load_source(&rel, kind, crate_name, &text));
    }
    Ok(files)
}

/// Runs every check — per-file rules and the call-graph-wide deep
/// families — over already-loaded workspace sources. Split from
/// [`run_workspace`] so tests can check patched in-memory sources (e.g.
/// "does swapping two lock acquisitions fail the gate").
pub fn check_sources(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        out.extend(check_file(file));
    }
    out.extend(deep::check_deep(files));
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Runs the full pass over the workspace at `root`.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree; rule
/// violations are *not* errors — they are the returned diagnostics.
pub fn run_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let files = load_workspace(root)?;
    let mut out = check_sources(&files);
    check_changelog(root, &mut out);
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

/// **changelog** — every PR appends one line to CHANGES.md, and every
/// entry line keeps the `PR <n>: <summary>` shape (no list bullets, no
/// drifting formats): the file is the cross-session protocol log and
/// tools parse it by that shape.
fn check_changelog(root: &Path, out: &mut Vec<Diagnostic>) {
    let path = root.join("CHANGES.md");
    let Ok(text) = fs::read_to_string(&path) else {
        out.push(Diagnostic {
            file: "CHANGES.md".to_string(),
            line: 0,
            rule: "changelog",
            message: "CHANGES.md must exist and carry at least one `PR …` entry".to_string(),
        });
        return;
    };
    let mut entries = 0usize;
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        // Headings and blank lines are fine; everything else must be an
        // entry of the canonical shape.
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let well_formed = t
            .strip_prefix("PR ")
            .and_then(|r| {
                let digits = r.chars().take_while(char::is_ascii_digit).count();
                (digits > 0).then(|| &r[digits..])
            })
            .is_some_and(|r| r.starts_with(": "));
        if well_formed {
            entries += 1;
        } else {
            out.push(Diagnostic {
                file: "CHANGES.md".to_string(),
                line: i + 1,
                rule: "changelog",
                message: format!(
                    "CHANGES.md line does not match the `PR <n>: <summary>` entry \
                     shape (got `{}…`)",
                    t.chars().take(40).collect::<String>()
                ),
            });
        }
    }
    if entries == 0 {
        out.push(Diagnostic {
            file: "CHANGES.md".to_string(),
            line: 0,
            rule: "changelog",
            message: "CHANGES.md must exist and carry at least one `PR …` entry".to_string(),
        });
    }
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Serializes diagnostics as a JSON array (hand-rolled: this crate is
/// zero-dependency by design).
pub fn to_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                esc(&d.file),
                d.line,
                esc(d.rule),
                esc(&d.message)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_workspace_layout() {
        assert_eq!(
            classify("crates/core/src/heap.rs"),
            Some((FileKind::Lib, "core".to_string()))
        );
        assert_eq!(
            classify("crates/bench/src/bin/sweep.rs"),
            Some((FileKind::Bin, "bench".to_string()))
        );
        assert_eq!(
            classify("shims/rayon/src/lib.rs"),
            Some((FileKind::Shim, "shims/rayon".to_string()))
        );
        assert_eq!(
            classify("src/lib.rs"),
            Some((FileKind::Lib, "rock".to_string()))
        );
        assert_eq!(
            classify("tests/proptests.rs"),
            Some((FileKind::TestOrExample, "rock".to_string()))
        );
        assert_eq!(classify("crates/tidy/tests/fixtures/panic_unwrap.rs"), None);
        assert_eq!(classify("target/debug/build/foo.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn json_escapes_quotes() {
        let d = vec![Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: "panic",
            message: "say \"no\"".into(),
        }];
        assert_eq!(
            to_json(&d),
            "[{\"file\":\"a.rs\",\"line\":3,\"rule\":\"panic\",\"message\":\"say \\\"no\\\"\"}]"
        );
    }
}

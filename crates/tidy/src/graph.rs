//! The workspace call graph: name-based resolution over the extracted
//! [`FnItem`]s plus reachability queries with path reconstruction.
//!
//! Resolution is deliberately conservative (an over-approximation): a
//! call resolves to *every* workspace function the lexical evidence
//! allows — same name, compatible qualifier, and defined in a crate the
//! caller's crate actually depends on. The reachability rules built on
//! top therefore may report a path the type system would rule out, but
//! can never miss one the source shows; a false edge costs an annotation
//! with a written invariant, a missed edge would cost a production
//! panic.
//!
//! The dependency restriction is what keeps the over-approximation
//! tolerable: a `.iter()` call in `rock-core` cannot resolve into the
//! `criterion` shim because `rock-core` does not depend on it. The map
//! mirrors the workspace `Cargo.toml`s; crates not listed (fixture
//! workspaces in tests) resolve permissively.

use std::collections::{BTreeMap, VecDeque};

use crate::items::{extract, CallSite, FnItem};
use crate::rules::{FileKind, SourceFile};

/// Compile-time dependency closure, by classifier crate name
/// (`core`, `data`, …, `shims/rayon`). Mirrors the crate manifests;
/// entries list *direct* dependencies — [`WorkspaceModel::build`]
/// computes the transitive closure.
const CRATE_DEPS: &[(&str, &[&str])] = &[
    ("core", &["shims/rand", "shims/rayon"]),
    ("data", &["core", "shims/rand", "shims/rayon"]),
    ("baselines", &["core", "data", "shims/rand"]),
    ("eval", &["core"]),
    ("bench", &["core", "baselines", "data", "eval", "shims/rand"]),
    ("rock", &["core", "baselines", "data", "eval", "shims/rand"]),
    ("tidy", &[]),
    ("shims/rand", &[]),
    ("shims/rayon", &[]),
    ("shims/proptest", &[]),
    ("shims/criterion", &[]),
];

/// `use`-path crate names mapped to classifier names, for resolving
/// `rock_core::perf::…`-style qualifiers.
const CRATE_ALIASES: &[(&str, &str)] = &[
    ("rock_core", "core"),
    ("rock_data", "data"),
    ("rock_baselines", "baselines"),
    ("rock_eval", "eval"),
    ("rock_tidy", "tidy"),
    ("rayon", "shims/rayon"),
    ("rand", "shims/rand"),
    ("proptest", "shims/proptest"),
    ("criterion", "shims/criterion"),
];

/// The extracted functions of a workspace plus resolution indices.
pub struct WorkspaceModel {
    /// Every non-test function of every `Lib`/`Shim` file, in file order.
    pub fns: Vec<FnItem>,
    /// Function name → indices into `fns` (BTreeMap for deterministic
    /// iteration — diagnostics must not depend on hash order).
    by_name: BTreeMap<String, Vec<usize>>,
}

impl WorkspaceModel {
    /// Extracts and indexes every non-test function from the `Lib` and
    /// `Shim` files of `files`. Test/bench/example code is out of model:
    /// the deep rules guard the shipped library surface.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut fns: Vec<FnItem> = Vec::new();
        for file in files {
            if !matches!(file.kind, FileKind::Lib | FileKind::Shim) {
                continue;
            }
            fns.extend(extract(file).into_iter().filter(|f| !f.in_test));
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        WorkspaceModel { fns, by_name }
    }

    /// True when code in `from` may call into `to` (same crate, a
    /// transitive dependency, or either crate is unknown to the map —
    /// fixture workspaces resolve permissively).
    fn crate_reaches(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        let known = |c: &str| CRATE_DEPS.iter().any(|(n, _)| *n == c);
        if !known(from) || !known(to) {
            return true;
        }
        // Transitive walk over the (tiny) static table.
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(c) = stack.pop() {
            let deps = CRATE_DEPS
                .iter()
                .find(|(n, _)| *n == c)
                .map(|(_, d)| *d)
                .unwrap_or(&[]);
            for &d in deps {
                if d == to {
                    return true;
                }
                if !seen.contains(&d) {
                    seen.push(d);
                    stack.push(d);
                }
            }
        }
        false
    }

    /// Resolves one call site to candidate function indices.
    pub fn resolve(&self, caller: &FnItem, call: &CallSite) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let reachable =
            |idx: &&usize| self.crate_reaches(&caller.crate_name, &self.fns[**idx].crate_name);
        if call.is_method {
            // `.name(…)`: any owned method with the name in a reachable
            // crate. Free functions can't be method-called.
            return cands
                .iter()
                .filter(|&&i| self.fns[i].owner.is_some())
                .filter(reachable)
                .copied()
                .collect();
        }
        if call.path.is_empty() {
            // Bare `name(…)`: free functions in the caller's crate or a
            // dependency (imported names resolve there too).
            return cands
                .iter()
                .filter(|&&i| self.fns[i].owner.is_none())
                .filter(reachable)
                .copied()
                .collect();
        }
        // Qualified `a::b::name(…)`: the innermost segment must match the
        // callee's owner type, enclosing module, or crate. `crate::…` and
        // `self::…` additionally pin the callee to the caller's crate.
        let mut seg = call.path.last().map(String::as_str).unwrap_or("");
        if seg == "Self" {
            // `Self::new(…)` — the impl block's type, known at the caller.
            seg = caller.owner.as_deref().unwrap_or("Self");
        }
        let first = call.path.first().map(String::as_str).unwrap_or("");
        let same_crate_only = first == "crate" || first == "self";
        let alias_crate = CRATE_ALIASES
            .iter()
            .find(|(a, _)| *a == seg || *a == first)
            .map(|(_, c)| *c);
        cands
            .iter()
            .filter(|&&i| {
                let f = &self.fns[i];
                if same_crate_only && f.crate_name != caller.crate_name {
                    // `crate::name(…)` with no module segment still lands
                    // here via seg == "crate".
                    return false;
                }
                let seg_matches = f.owner.as_deref() == Some(seg)
                    || f.module.last().map(String::as_str) == Some(seg)
                    || alias_crate == Some(f.crate_name.as_str())
                    || seg == "crate"
                    || seg == "self";
                seg_matches
            })
            .filter(reachable)
            .copied()
            .collect()
    }

    /// Resolved callee indices of `fns[idx]`, deduplicated, in order.
    pub fn callees(&self, idx: usize) -> Vec<usize> {
        let caller = &self.fns[idx];
        let mut out: Vec<usize> = Vec::new();
        for call in &caller.calls {
            for c in self.resolve(caller, call) {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// BFS from `roots` over resolved call edges. Returns one
    /// `Option<parent>` per function: `Some(parent)` for reached
    /// functions (`parent == self` marks a root), `None` for unreached.
    pub fn reach_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(at) = queue.pop_front() {
            for c in self.callees(at) {
                if parent[c].is_none() {
                    parent[c] = Some(at);
                    queue.push_back(c);
                }
            }
        }
        parent
    }

    /// Reconstructs the root → … → `idx` call chain from a
    /// [`Self::reach_from`] parent array, as display paths.
    pub fn chain(&self, parents: &[Option<usize>], idx: usize) -> Vec<String> {
        let mut rev = vec![idx];
        let mut at = idx;
        while let Some(p) = parents[at] {
            if p == at {
                break;
            }
            rev.push(p);
            at = p;
        }
        rev.iter().rev().map(|&i| self.fns[i].display_path()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_source;

    fn model(files: &[(&str, &str, FileKind, &str)]) -> WorkspaceModel {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(rel, krate, kind, src)| load_source(rel, *kind, krate.to_string(), src))
            .collect();
        WorkspaceModel::build(&sources)
    }

    #[test]
    fn bare_and_qualified_calls_resolve() {
        let m = model(&[(
            "crates/core/src/a.rs",
            "core",
            FileKind::Lib,
            "pub fn top() { helper(); perf::count(1); }\n\
             pub fn helper() {}\n",
        ), (
            "crates/core/src/perf.rs",
            "core",
            FileKind::Lib,
            "pub fn count(n: u64) {}\n",
        )]);
        let top = m.fns.iter().position(|f| f.name == "top").expect("top");
        let names: Vec<&str> = m.callees(top).iter().map(|&i| m.fns[i].name.as_str()).collect();
        assert_eq!(names, vec!["helper", "count"]);
    }

    #[test]
    fn dependency_map_limits_resolution() {
        // `core` calling `.run()` must not resolve into criterion's
        // same-named method: core does not depend on criterion.
        let m = model(&[(
            "crates/core/src/a.rs",
            "core",
            FileKind::Lib,
            "pub fn go(x: &X) { x.run(); }\n",
        ), (
            "shims/criterion/src/lib.rs",
            "shims/criterion",
            FileKind::Shim,
            "pub struct C;\nimpl C { pub fn run(&self) { panic!(\"x\") } }\n",
        ), (
            "shims/rayon/src/lib.rs",
            "shims/rayon",
            FileKind::Shim,
            "pub struct S;\nimpl S { pub fn run(&self) {} }\n",
        )]);
        let go = m.fns.iter().position(|f| f.name == "go").expect("go");
        let crates: Vec<&str> = m
            .callees(go)
            .iter()
            .map(|&i| m.fns[i].crate_name.as_str())
            .collect();
        assert_eq!(crates, vec!["shims/rayon"]);
    }

    #[test]
    fn reachability_with_chain() {
        let m = model(&[(
            "crates/core/src/a.rs",
            "core",
            FileKind::Lib,
            "pub fn root() { mid(); }\n\
             pub fn mid() { leaf(); }\n\
             pub fn leaf() {}\n\
             pub fn island() {}\n",
        )]);
        let root = m.fns.iter().position(|f| f.name == "root").expect("root");
        let leaf = m.fns.iter().position(|f| f.name == "leaf").expect("leaf");
        let island = m.fns.iter().position(|f| f.name == "island").expect("island");
        let parents = m.reach_from(&[root]);
        assert!(parents[leaf].is_some());
        assert!(parents[island].is_none());
        assert_eq!(m.chain(&parents, leaf), vec!["core::a::root", "core::a::mid", "core::a::leaf"]);
    }
}

//! The invariant catalog: one small self-contained checker per rule.
//!
//! Every checker takes a scanned [`SourceFile`] and reports violations as
//! [`Diagnostic`]s with precise `file:line` positions. A site can be
//! exempted with an adjacent annotation
//!
//! ```text
//! // tidy-allow(<rule>): <concrete invariant that makes the site sound>
//! ```
//!
//! on the same line or one of the two lines above. The reason is
//! mandatory: an annotation without one does not exempt the site (and is
//! itself reported), so every allowlisted violation carries its own
//! justification in the diff.

use crate::scan::{contains_word, SourceLine};

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code of a workspace crate (`crates/<name>/src/**`,
    /// facade `src/**`).
    Lib,
    /// A binary target (`src/bin/**`).
    Bin,
    /// A vendored offline shim (`shims/<name>/src/**`).
    Shim,
    /// Tests, examples and benches — exempt from the library-only rules.
    TestOrExample,
}

/// A scanned source file plus its workspace classification.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// File classification.
    pub kind: FileKind,
    /// Owning crate: `core`, `data`, … for `crates/*`; `rock` for the
    /// facade; `shims/rayon` etc. for shims.
    pub crate_name: String,
    /// Code/comment split per line.
    pub lines: Vec<SourceLine>,
    /// `true` for lines inside `#[cfg(test)]` items.
    pub in_test: Vec<bool>,
}

/// One rule violation at a precise position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for whole-file / workspace findings).
    pub line: usize,
    /// Rule identifier (the name accepted by `tidy-allow(...)`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Every rule name accepted by the `tidy-allow(<rule>)` grammar.
pub const ALLOWABLE_RULES: &[&str] = &[
    "panic",
    "nondeterministic-iter",
    "wall-clock",
    "float-ordering",
    "file-io",
    "unsafe-block",
    "forbid-unsafe",
    "debris",
    "kernel-alloc",
    "panic-reach",
    "lock-order",
    "counter-coverage",
    "error-coverage",
    "shims-confined",
];

/// The crates whose library code must be panic-free / total-ordered.
const CHECKED_LIBS: &[&str] = &["core", "data", "baselines", "eval", "rock"];

/// Library files allowed to read the wall clock (timing code).
const WALL_CLOCK_FILES: &[&str] = &["crates/core/src/report.rs", "crates/core/src/governor.rs"];

/// True if line `idx` (0-based) carries a valid `tidy-allow(rule): reason`
/// on itself or one of the two preceding lines.
pub(crate) fn allowed(file: &SourceFile, idx: usize, rule: &str) -> bool {
    let lo = idx.saturating_sub(2);
    (lo..=idx).any(|i| {
        file.lines
            .get(i)
            .and_then(|l| parse_allow(&l.comment))
            .is_some_and(|(r, reason)| r == rule && !reason.is_empty())
    })
}

/// Parses a `tidy-allow(<rule>): <reason>` annotation. Only a comment
/// that *starts* with the grammar counts — prose (or documentation like
/// this sentence) merely mentioning `tidy-allow(...)` does not.
fn parse_allow(comment: &str) -> Option<(&str, &str)> {
    let after = comment.trim_start().strip_prefix("tidy-allow(")?;
    let close = after.find(')')?;
    let rule = after[..close].trim();
    let tail = &after[close + 1..];
    let reason = tail.strip_prefix(':').unwrap_or("").trim();
    Some((rule, reason))
}

/// Shared walk: yields `(line_index, line)` for non-test lines.
fn lib_lines(file: &SourceFile) -> impl Iterator<Item = (usize, &SourceLine)> {
    file.lines
        .iter()
        .enumerate()
        .filter(|&(i, _)| !file.in_test.get(i).copied().unwrap_or(false))
}

fn diag(file: &SourceFile, idx: usize, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.rel.clone(),
        line: idx + 1,
        rule,
        message,
    }
}

/// **annotation** — malformed or unknown `tidy-allow` annotations are
/// themselves violations, so a typo cannot silently disable a rule.
pub fn check_annotations(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line) in file.lines.iter().enumerate() {
        if let Some((rule, reason)) = parse_allow(&line.comment) {
            if !ALLOWABLE_RULES.contains(&rule) {
                out.push(diag(
                    file,
                    i,
                    "annotation",
                    format!("tidy-allow names unknown rule `{rule}`"),
                ));
            } else if reason.is_empty() {
                out.push(diag(
                    file,
                    i,
                    "annotation",
                    format!(
                        "tidy-allow({rule}) needs a `: <reason>` stating the invariant \
                         that makes the site sound"
                    ),
                ));
            }
        }
    }
}

/// **panic** — library code of the checked crates must not contain
/// `unwrap`/`expect`/`panic!`/`unreachable!`: fallible paths go through
/// `RockError`, infallible ones carry a `tidy-allow(panic)` invariant.
/// (`assert!` of documented preconditions is the sanctioned idiom and is
/// not flagged; `todo!`/`dbg!` debris is the **debris** rule.)
pub fn check_panic(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib || !CHECKED_LIBS.contains(&file.crate_name.as_str()) {
        return;
    }
    const PATTERNS: &[(&str, &str)] = &[
        (".unwrap()", "`.unwrap()` panics on None/Err"),
        (".expect(", "`.expect(...)` panics on None/Err"),
        ("panic!(", "`panic!` in library code"),
        ("unreachable!(", "`unreachable!` in library code"),
    ];
    for (i, line) in lib_lines(file) {
        for &(pat, what) in PATTERNS {
            if line.code.contains(pat) && !allowed(file, i, "panic") {
                out.push(diag(
                    file,
                    i,
                    "panic",
                    format!(
                        "{what}; return a RockError or add \
                         `// tidy-allow(panic): <invariant>`"
                    ),
                ));
                break; // one diagnostic per line is enough
            }
        }
    }
}

/// **wall-clock** — `rock-core` is the deterministic replay engine: the
/// wall clock may only be read by the timing modules (`report.rs`,
/// `governor.rs`). A stray `Instant::now()` anywhere else is how
/// time-dependent behaviour sneaks into merge order or WAL bytes.
pub fn check_wall_clock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib || file.crate_name != "core" {
        return;
    }
    if WALL_CLOCK_FILES.contains(&file.rel.as_str()) {
        return;
    }
    const PATTERNS: &[&str] = &["Instant::now", "SystemTime", "UNIX_EPOCH"];
    for (i, line) in lib_lines(file) {
        for &pat in PATTERNS {
            if line.code.contains(pat) && !allowed(file, i, "wall-clock") {
                out.push(diag(
                    file,
                    i,
                    "wall-clock",
                    format!(
                        "`{pat}` outside report.rs/governor.rs: deterministic modules \
                         must not read the wall clock"
                    ),
                ));
            }
        }
    }
}

/// Library files allowed to touch the filesystem in `rock-core`: the
/// two durable-bytes boundary modules (merge WAL, model artifact).
const FILE_IO_FILES: &[&str] = &["crates/core/src/wal.rs", "crates/core/src/artifact.rs"];

/// **file-io** — `rock-core` is an in-memory engine; the only modules
/// allowed to open, read or write files are the durability boundaries
/// (`wal.rs`, `artifact.rs`). Filesystem access creeping into any other
/// module is how "pure" kernels quietly grow environment dependencies —
/// and how the serve layer would lose its pluggable-source seam
/// (everything else must go through `artifact::ArtifactSource`).
pub fn check_file_io(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib || file.crate_name != "core" {
        return;
    }
    if FILE_IO_FILES.contains(&file.rel.as_str()) {
        return;
    }
    const PATTERNS: &[&str] = &[
        "std::fs",
        "fs::read",
        "fs::write",
        "fs::rename",
        "fs::remove",
        "File::open",
        "File::create",
        "OpenOptions",
    ];
    for (i, line) in lib_lines(file) {
        if let Some(pat) = PATTERNS.iter().find(|p| line.code.contains(**p)) {
            if !allowed(file, i, "file-io") {
                out.push(diag(
                    file,
                    i,
                    "file-io",
                    format!(
                        "`{pat}` outside wal.rs/artifact.rs: rock-core file I/O is \
                         confined to the durability boundary modules"
                    ),
                ));
            }
        }
    }
}

/// **float-ordering** — ordering decisions on floats must use
/// `total_cmp`: `partial_cmp` returns `None` on NaN and the usual
/// `.partial_cmp(..).unwrap()` idiom turns a poisoned similarity into a
/// mid-merge panic (and `Option`-defaulting turns it into silent
/// order instability).
pub fn check_float_ordering(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib || !CHECKED_LIBS.contains(&file.crate_name.as_str()) {
        return;
    }
    for (i, line) in lib_lines(file) {
        if line.code.contains(".partial_cmp(") && !allowed(file, i, "float-ordering") {
            out.push(diag(
                file,
                i,
                "float-ordering",
                "`partial_cmp` in an ordering path: use `f64::total_cmp` so NaN orders \
                 deterministically instead of panicking or vanishing"
                    .to_string(),
            ));
        }
    }
}

/// **nondeterministic-iter** — in `rock-core` and `rock-baselines`,
/// iterating a `HashMap`/`HashSet` in an order-sensitive position is the
/// classic way to lose bit-identical replay (or, in a baseline, a
/// seed-reproducible comparison run). Every iteration over a hash-typed
/// binding must either be followed by a sort (within the next few lines)
/// or carry a `tidy-allow(nondeterministic-iter)` annotation explaining
/// why the order cannot reach merge decisions, reports or WAL bytes.
pub fn check_nondeterministic_iter(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const ORDERED_LIBS: &[&str] = &["core", "baselines"];
    if file.kind != FileKind::Lib || !ORDERED_LIBS.contains(&file.crate_name.as_str()) {
        return;
    }
    let idents = hash_idents(file);
    if idents.is_empty() {
        return;
    }
    /// How far below an iteration site a `.sort…` call still counts as
    /// "the order is canonicalised before it can escape".
    const SORT_WINDOW: usize = 10;
    const ITER_METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
    ];
    for (i, line) in lib_lines(file) {
        let mut hit: Option<String> = None;
        for ident in &idents {
            let direct = ITER_METHODS
                .iter()
                .any(|m| line.code.contains(&format!("{ident}{m}")));
            let in_for = line.code.trim_start().starts_with("for ")
                && line
                    .code
                    .split_once(" in ")
                    .is_some_and(|(_, tail)| contains_word(tail, ident));
            if direct || in_for {
                hit = Some(ident.clone());
                break;
            }
        }
        let Some(ident) = hit else { continue };
        if allowed(file, i, "nondeterministic-iter") {
            continue;
        }
        let sorted_below = (i..file.lines.len().min(i + 1 + SORT_WINDOW))
            .any(|j| file.lines[j].code.contains(".sort"));
        if sorted_below {
            continue;
        }
        out.push(diag(
            file,
            i,
            "nondeterministic-iter",
            format!(
                "iteration over hash-ordered `{ident}` with no nearby sort: sort the \
                 result, use a BTreeMap, or add \
                 `// tidy-allow(nondeterministic-iter): <why order cannot escape>`"
            ),
        ));
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` types in this file:
/// `let` bindings and field/parameter declarations whose line names a
/// hash type, plus `let x = std::mem::take(&mut <hash ident>…)`
/// propagation (the merge loop's map-stealing idiom).
fn hash_idents(file: &SourceFile) -> Vec<String> {
    const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
    let mut idents: Vec<String> = Vec::new();
    let push = |name: &str, idents: &mut Vec<String>| {
        if !name.is_empty() && !idents.iter().any(|i| i == name) {
            idents.push(name.to_string());
        }
    };
    for (_, line) in lib_lines(file) {
        let code = line.code.as_str();
        // `contains`, not `contains_word`: `FxHashMap` must count too.
        if !HASH_TYPES.iter().any(|t| code.contains(t)) {
            continue;
        }
        // `let [mut] name(: T)? = …` with a hash type anywhere on the line.
        if let Some(after_let) = code.trim_start().strip_prefix("let ") {
            let after_let = after_let.strip_prefix("mut ").unwrap_or(after_let);
            let name: String = after_let
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            push(&name, &mut idents);
            continue;
        }
        // Declaration position — field, parameter or struct literal:
        // `name: Vec<FxHashMap<…>>`. The binding is the identifier before
        // the first *single* colon (`::` paths don't count).
        let chars: Vec<char> = code.chars().collect();
        let single_colon = (0..chars.len()).find(|&i| {
            chars[i] == ':'
                && chars.get(i + 1) != Some(&':')
                && (i == 0 || chars[i - 1] != ':')
        });
        if let Some(at) = single_colon {
            let name: String = chars[..at]
                .iter()
                .rev()
                .take_while(|c| c.is_alphanumeric() || **c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            // Only a declaration whose *type side* names the hash type.
            let type_side: String = chars[at..].iter().collect();
            if HASH_TYPES.iter().any(|t| type_side.contains(t)) {
                push(&name, &mut idents);
            }
        }
    }
    // One propagation pass: `let w = std::mem::take(&mut self.links…)`.
    let known = idents.clone();
    for (_, line) in lib_lines(file) {
        let code = line.code.trim_start();
        let Some(after_let) = code.strip_prefix("let ") else {
            continue;
        };
        if !code.contains("mem::take(") {
            continue;
        }
        if known.iter().any(|k| contains_word(code, k)) {
            let after_let = after_let.strip_prefix("mut ").unwrap_or(after_let);
            let name: String = after_let
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            push(&name, &mut idents);
        }
    }
    idents
}

/// **engine-contract** — `crates/core/src/engine/**` is the staged
/// orchestration layer every governed run flows through, so it carries a
/// stricter contract than the rest of the checked libraries:
///
/// * panic patterns are violations even when `tidy-allow(panic)`-
///   annotated — the escape hatch stops at the engine boundary; fallible
///   stage code returns `RockError`, full stop;
/// * every `pub` item must carry a `///` doc comment (the engine is the
///   extension surface for new stages and models).
///
/// The rule is deliberately **not** in [`ALLOWABLE_RULES`]: a
/// `tidy-allow(engine-contract)` annotation is itself an **annotation**
/// violation, so there is no way to opt a site out.
pub fn check_engine_contract(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib || !file.rel.starts_with("crates/core/src/engine/") {
        return;
    }
    const PANICS: &[&str] = &[".unwrap()", ".expect(", "panic!(", "unreachable!("];
    const ITEMS: &[&str] = &[
        "struct ", "enum ", "trait ", "fn ", "type ", "const ", "mod ", "union ",
    ];
    for (i, line) in lib_lines(file) {
        if let Some(pat) = PANICS.iter().find(|p| line.code.contains(**p)) {
            out.push(diag(
                file,
                i,
                "engine-contract",
                format!(
                    "`{pat}…` in engine code: stages and the pipeline are panic-free \
                     by contract (no tidy-allow escape); return a RockError instead"
                ),
            ));
        }
        let trimmed = line.code.trim_start();
        if let Some(mut rest) = trimmed.strip_prefix("pub ") {
            for modifier in ["unsafe ", "async "] {
                rest = rest.strip_prefix(modifier).unwrap_or(rest);
            }
            if ITEMS.iter().any(|item| rest.starts_with(item)) && !doc_comment_above(file, i) {
                out.push(diag(
                    file,
                    i,
                    "engine-contract",
                    "public engine item without a `///` doc comment: the engine is the \
                     stage/model extension surface and its API must be documented"
                        .to_string(),
                ));
            }
        }
    }
}

/// True if the nearest line above `idx` that is not an outer attribute is
/// a `///` doc comment. (Attribute detection is line-oriented: a
/// multi-line `#[derive(…)]` hides the doc above it — keep attributes on
/// one line in engine code.)
fn doc_comment_above(file: &SourceFile, idx: usize) -> bool {
    for j in (0..idx).rev() {
        let l = &file.lines[j];
        if l.code.trim().starts_with("#[") {
            continue;
        }
        // `/// text` scans to empty code and a comment starting with `/`.
        return l.code.trim().is_empty() && l.comment.trim_start().starts_with('/');
    }
    false
}

/// **unsafe-block** — every `unsafe` occurrence in code must carry an
/// adjacent `// SAFETY:` comment (same line or the three lines above)
/// justifying it. Applies to *all* files, shims and tests included.
pub fn check_unsafe(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line) in file.lines.iter().enumerate() {
        if !contains_word(&line.code, "unsafe") {
            continue;
        }
        // `#![forbid(unsafe_code)]` mentions unsafe_code, not the keyword;
        // contains_word already rejects it, but `forbid(unsafe)` doesn't
        // exist, so anything matching here is the real keyword.
        let lo = i.saturating_sub(3);
        let documented = (lo..=i).any(|j| file.lines[j].comment.trim_start().starts_with("SAFETY:"));
        if !documented && !allowed(file, i, "unsafe-block") {
            out.push(diag(
                file,
                i,
                "unsafe-block",
                "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            ));
        }
    }
}

/// **forbid-unsafe** — every workspace library root (`crates/*/src/lib.rs`,
/// `shims/*/src/lib.rs`) must carry `#![forbid(unsafe_code)]`, so unsafe
/// cannot creep into a crate without a deliberate, reviewed lift of the
/// attribute (annotated with `tidy-allow(forbid-unsafe)`).
pub fn check_forbid_unsafe(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let is_lib_root = (file.rel.starts_with("crates/") || file.rel.starts_with("shims/"))
        && file.rel.ends_with("/src/lib.rs");
    if !is_lib_root {
        return;
    }
    let has = file
        .lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    let lifted = file
        .lines
        .iter()
        .enumerate()
        .any(|(i, _)| allowed(file, i, "forbid-unsafe"));
    if !has && !lifted {
        out.push(Diagnostic {
            file: file.rel.clone(),
            line: 1,
            rule: "forbid-unsafe",
            message: "library root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// **debris** — `dbg!`, `todo!` and `unimplemented!` are development
/// debris and must not be committed anywhere, tests included.
pub fn check_debris(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const PATTERNS: &[&str] = &["dbg!(", "todo!(", "unimplemented!("];
    for (i, line) in file.lines.iter().enumerate() {
        for &pat in PATTERNS {
            if line.code.contains(pat) && !allowed(file, i, "debris") {
                out.push(diag(
                    file,
                    i,
                    "debris",
                    format!("development debris `{pat}...)` must not be committed"),
                ));
            }
        }
    }
}

/// Allocation patterns forbidden inside marked kernel hot loops. Each
/// entry is `(pattern, what)`.
const KERNEL_ALLOC_PATTERNS: &[(&str, &str)] = &[
    ("Vec::new(", "`Vec::new` allocates on first push"),
    ("vec![", "`vec![...]` allocates"),
    ("::with_capacity(", "`with_capacity` allocates"),
    ("HashMap::new(", "`HashMap::new` allocates on first insert"),
    ("HashMap::default(", "hash-map construction allocates on first insert"),
    ("HashSet::new(", "`HashSet::new` allocates on first insert"),
    ("BTreeMap::new(", "`BTreeMap::new` allocates per node"),
    ("Box::new(", "`Box::new` allocates"),
    (".to_vec()", "`.to_vec()` allocates a fresh buffer"),
    (".collect(", "`.collect()` allocates its container"),
    ("format!(", "`format!` allocates a String"),
    ("String::new(", "`String::new` allocates on first push"),
    (".to_string()", "`.to_string()` allocates"),
];

/// **kernel-alloc** — per-iteration allocation is how a kernel quietly
/// loses an order of magnitude: a `Vec::new` inside the scatter loop
/// turns O(pairs) arithmetic into O(pairs) malloc round-trips. The hot
/// loops of the checked libraries are delimited with marker comments
///
/// ```text
/// // tidy:kernel-hot-loop — <what this loop does>
///     ...the loop body: no allocation allowed...
/// // tidy:end-kernel-hot-loop
/// ```
///
/// and inside a region every allocating construction
/// ([`KERNEL_ALLOC_PATTERNS`]) is a violation unless it carries a
/// `tidy-allow(kernel-alloc)` annotation stating why the allocation is
/// amortised (e.g. runs once per shard, not once per element). Scratch
/// buffers belong *above* the marker; the bench harness's counting
/// allocator measures the same invariant dynamically. An opened region
/// that is never closed is itself a violation, so a deleted end marker
/// cannot silently disable the rule for the rest of the file.
pub fn check_kernel_alloc(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib || !CHECKED_LIBS.contains(&file.crate_name.as_str()) {
        return;
    }
    let mut open_at: Option<usize> = None;
    for (i, line) in file.lines.iter().enumerate() {
        let comment = line.comment.trim_start();
        if comment.starts_with("tidy:end-kernel-hot-loop") {
            open_at = None;
            continue;
        }
        if comment.starts_with("tidy:kernel-hot-loop") {
            open_at = Some(i);
            continue;
        }
        if open_at.is_none() || file.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        if let Some(&(pat, what)) = KERNEL_ALLOC_PATTERNS
            .iter()
            .find(|(p, _)| line.code.contains(p))
        {
            if !allowed(file, i, "kernel-alloc") {
                out.push(diag(
                    file,
                    i,
                    "kernel-alloc",
                    format!(
                        "{what} inside a kernel hot loop (`{pat}…`): hoist the buffer \
                         above the tidy:kernel-hot-loop marker or add \
                         `// tidy-allow(kernel-alloc): <why this is amortised>`"
                    ),
                ));
            }
        }
    }
    if let Some(at) = open_at {
        out.push(diag(
            file,
            at,
            "kernel-alloc",
            "tidy:kernel-hot-loop region is never closed: add \
             `// tidy:end-kernel-hot-loop` after the loop body"
                .to_string(),
        ));
    }
}

/// Crate-path roots a library file may import from: the language/std
/// roots, the workspace's own crates, and the vendored offline shims.
const CONFINED_ROOTS: &[&str] = &[
    // Language and path roots.
    "std", "core", "alloc", "crate", "self", "super",
    // Workspace crates (lib names as written in `use` paths).
    "rock", "rock_core", "rock_data", "rock_baselines", "rock_eval", "rock_tidy",
    // Vendored shims (shims/<name> in-tree).
    "rayon", "rand", "proptest", "criterion",
];

/// **shims-confined** — the workspace builds fully offline: library and
/// shim code may only import std, workspace crates and the vendored
/// shims (`rayon`/`rand`/`proptest`/`criterion`). A `use serde::…`
/// compiles locally only if someone added a registry dependency, which
/// breaks the no-network build invariant — flag it at the import, before
/// the manifest diff is even read.
pub fn check_shims_confined(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !matches!(file.kind, FileKind::Lib | FileKind::Shim) {
        return;
    }
    // Modules the file itself declares: edition-2018 uniform paths let a
    // crate root write `use rules::check_file;` for its own `mod rules;`.
    let local_mods: Vec<String> = file
        .lines
        .iter()
        .filter_map(|l| {
            let t = l.code.trim_start();
            let rest = t
                .strip_prefix("pub mod ")
                .or_else(|| t.strip_prefix("mod "))?;
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            (!name.is_empty()).then_some(name)
        })
        .collect();
    for (i, line) in file.lines.iter().enumerate() {
        let t = line.code.trim_start();
        let rest = t
            .strip_prefix("pub use ")
            .or_else(|| t.strip_prefix("pub(crate) use "))
            .or_else(|| t.strip_prefix("use "))
            .or_else(|| t.strip_prefix("extern crate "));
        let Some(rest) = rest else { continue };
        let root: String = rest
            .trim_start_matches("::")
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if root.is_empty()
            || CONFINED_ROOTS.contains(&root.as_str())
            || local_mods.iter().any(|m| m == &root)
            // An uppercase root is a type in scope (`use Edibility::{…}`
            // for a local enum), never an external crate.
            || root.chars().next().is_some_and(char::is_uppercase)
        {
            continue;
        }
        if !allowed(file, i, "shims-confined") {
            out.push(diag(
                file,
                i,
                "shims-confined",
                format!(
                    "import from `{root}`: library code may only depend on std, \
                     workspace crates and the vendored shims (offline-build \
                     invariant); vendor a shim under shims/ or drop the dependency"
                ),
            ));
        }
    }
}

/// **shim-doc** — each vendored shim must document, in its crate-level
/// doc comment, that it is an offline stand-in and which API subset it
/// carries; otherwise a future reader mistakes it for the real crate.
pub fn check_shim_doc(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Shim || !file.rel.ends_with("/src/lib.rs") {
        return;
    }
    let doc: String = file
        .lines
        .iter()
        .take(40)
        .map(|l| l.comment.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    let ok = (doc.contains("stand-in") || doc.contains("vendor"))
        && (doc.contains("subset") || doc.contains("slice"));
    if !ok {
        out.push(Diagnostic {
            file: file.rel.clone(),
            line: 1,
            rule: "shim-doc",
            message: "shim crate doc must state it is an offline stand-in and name the \
                      vendored API subset"
                .to_string(),
        });
    }
}

/// Runs every per-file rule on `file`.
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_annotations(file, &mut out);
    check_panic(file, &mut out);
    check_wall_clock(file, &mut out);
    check_file_io(file, &mut out);
    check_float_ordering(file, &mut out);
    check_nondeterministic_iter(file, &mut out);
    check_engine_contract(file, &mut out);
    check_kernel_alloc(file, &mut out);
    check_unsafe(file, &mut out);
    check_forbid_unsafe(file, &mut out);
    check_debris(file, &mut out);
    check_shim_doc(file, &mut out);
    check_shims_confined(file, &mut out);
    out
}

//! The deep (workspace-level) rule families: checks that need the call
//! graph rather than a single line — panic-reachability, lock-order,
//! counter-coverage and error-coverage.
//!
//! Where the per-line rules in [`crate::rules`] ask "does this line
//! contain a forbidden pattern", these ask "can control flow starting in
//! a protected module *reach* one". All four run off the same
//! [`WorkspaceModel`] built once per pass; everything is conservative in
//! the reporting direction (see the [`crate::graph`] docs).
//!
//! Allow-escape semantics per family:
//!
//! * **panic-reach** — a reachable panic site is exempt if it carries a
//!   `tidy-allow(panic)` *or* `tidy-allow(panic-reach)` invariant; an
//!   indexing site in a protected module needs `tidy-allow(panic-reach)`.
//! * **lock-order** — a nested acquisition or a similarity call under a
//!   held guard can carry `tidy-allow(lock-order)` stating the order
//!   invariant; a **cycle** in the acquisition graph has *no* escape
//!   (two annotated-but-opposite orders are still a deadlock).
//! * **counter-coverage** — `tidy-allow(counter-coverage)` on the
//!   `tidy:kernel-hot-loop` marker line states why the enclosing kernel
//!   is metered elsewhere (e.g. callers count in aggregate).
//! * **error-coverage** — `tidy-allow(error-coverage)` on the variant's
//!   declaration line in `error.rs`.

use std::collections::BTreeMap;

use crate::graph::WorkspaceModel;
use crate::items::FnItem;
use crate::lex::{lex, TokKind};
use crate::rules::{allowed, Diagnostic, FileKind, SourceFile};

/// Files whose functions are panic-reachability roots: the engine
/// orchestration layer plus the durability codecs and the serve path —
/// the modules a production deployment cannot afford to see panic.
const PROTECTED_FILES: &[&str] = &[
    "crates/core/src/serve.rs",
    "crates/core/src/wal.rs",
    "crates/core/src/artifact.rs",
    "crates/core/src/util/frame.rs",
    "crates/core/src/incremental.rs",
];

/// Crates whose library code the deep rules gate (same set as the
/// per-line panic rule).
const CHECKED_LIBS: &[&str] = &["core", "data", "baselines", "eval", "rock"];

/// Method names that dispatch into user-supplied similarity code
/// (`Similarity::similarity`, `IndexedSimilarity::sim`). Calling these
/// while holding a lock hands the lock's critical section to arbitrary
/// user code.
const SIMILARITY_METHODS: &[&str] = &["similarity", "sim"];

fn is_protected(rel: &str) -> bool {
    rel.starts_with("crates/core/src/engine/") || PROTECTED_FILES.contains(&rel)
}

/// Runs all four deep families over the workspace's files.
pub fn check_deep(files: &[SourceFile]) -> Vec<Diagnostic> {
    let model = WorkspaceModel::build(files);
    let by_rel: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let mut out = Vec::new();
    check_panic_reach(&model, &mut out);
    check_lock_order(&model, &mut out);
    check_counter_coverage(&model, &by_rel, &mut out);
    check_error_coverage(files, &by_rel, &mut out);
    out
}

/// **panic-reach** — no path from a protected root (engine, serve, WAL
/// and artifact codecs) to an unannotated panicking construct, through
/// any number of calls; plus no unannotated indexing directly inside a
/// protected module (a wrong index is the classic way a corrupt artifact
/// byte becomes a serve-time panic).
fn check_panic_reach(model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
    let roots: Vec<usize> = (0..model.fns.len())
        .filter(|&i| is_protected(&model.fns[i].file))
        .collect();
    if roots.is_empty() {
        return;
    }
    let parents = model.reach_from(&roots);
    for (i, f) in model.fns.iter().enumerate() {
        if parents[i].is_none() {
            continue;
        }
        for p in &f.panics {
            if p.allowed {
                continue;
            }
            let chain = model.chain(&parents, i);
            out.push(Diagnostic {
                file: f.file.clone(),
                line: p.line + 1,
                rule: "panic-reach",
                message: format!(
                    "{what} is reachable from protected module code via {chain}: \
                     return a RockError or add `// tidy-allow(panic-reach): <invariant>`",
                    what = p.what,
                    chain = chain.join(" -> "),
                ),
            });
        }
    }
    for &i in &roots {
        let f = &model.fns[i];
        for site in &f.indexes {
            if site.allowed {
                continue;
            }
            out.push(Diagnostic {
                file: f.file.clone(),
                line: site.line + 1,
                rule: "panic-reach",
                message: format!(
                    "indexing in protected fn `{}` panics on out-of-bounds: use \
                     `.get(…)` with a RockError path or add \
                     `// tidy-allow(panic-reach): <why the index is in bounds>`",
                    f.display_path(),
                ),
            });
        }
    }
}

/// A lock-acquisition edge: `from` held while `to` is acquired.
struct LockEdge {
    from: String,
    to: String,
    file: String,
    /// 1-based line of the inner acquisition (or the call that leads to
    /// it, for interprocedural edges).
    line: usize,
}

/// **lock-order** — builds the static acquisition graph over the checked
/// libraries and flags (a) nested acquisitions without an order
/// invariant, (b) similarity-trait calls under a held guard, and (c)
/// cycles in the graph, which no annotation can excuse.
fn check_lock_order(model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
    let in_scope = |f: &FnItem| {
        f.kind == FileKind::Lib && CHECKED_LIBS.contains(&f.crate_name.as_str())
    };
    // Transitive "locks this fn may acquire" per function, for
    // lock-held-across-call edges.
    let mut edges: Vec<LockEdge> = Vec::new();
    for f in model.fns.iter().filter(|f| in_scope(f)) {
        for (ai, a) in f.locks.iter().enumerate() {
            let held = |line: usize| line > a.line && line <= a.scope_end;
            // (a) direct nesting inside a's guard scope.
            for b in f.locks.iter().skip(ai + 1) {
                if held(b.line) && b.lock != a.lock {
                    edges.push(LockEdge {
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        file: f.file.clone(),
                        line: b.line + 1,
                    });
                    if !b.allowed {
                        out.push(Diagnostic {
                            file: f.file.clone(),
                            line: b.line + 1,
                            rule: "lock-order",
                            message: format!(
                                "`{}` acquired while `{}` is held (in `{}`): state the \
                                 workspace-wide order invariant with \
                                 `// tidy-allow(lock-order): <order>` or release first",
                                b.lock,
                                a.lock,
                                f.display_path(),
                            ),
                        });
                    }
                }
            }
            for call in f.calls.iter().filter(|c| held(c.line)) {
                // (b) user-supplied similarity code under a held guard.
                if call.is_method
                    && SIMILARITY_METHODS.contains(&call.name.as_str())
                    && !a.allowed
                {
                    out.push(Diagnostic {
                        file: f.file.clone(),
                        line: a.line + 1,
                        rule: "lock-order",
                        message: format!(
                            "`{}` is held across a `.{}(…)` call into user-supplied \
                             similarity code (line {}): compute first, lock after, or \
                             add `// tidy-allow(lock-order): <why user code cannot \
                             re-enter>`",
                            a.lock,
                            call.name,
                            call.line + 1,
                        ),
                    });
                }
                // Interprocedural edges (cycle detection only): locks the
                // callee may transitively acquire while `a` is held.
                for callee in model.resolve(f, call) {
                    let reach = model.reach_from(&[callee]);
                    for (j, g) in model.fns.iter().enumerate() {
                        if reach[j].is_none() {
                            continue;
                        }
                        for b in &g.locks {
                            if b.lock != a.lock {
                                edges.push(LockEdge {
                                    from: a.lock.clone(),
                                    to: b.lock.clone(),
                                    file: f.file.clone(),
                                    line: call.line + 1,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    // (c) cycles: deduplicate the edge set, then DFS per distinct edge.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in &edges {
        let next = adj.entry(e.from.as_str()).or_default();
        if !next.contains(&e.to.as_str()) {
            next.push(e.to.as_str());
        }
    }
    let mut reported: Vec<(String, String)> = Vec::new();
    for e in &edges {
        // Is `e.from` reachable back from `e.to` in the lock graph?
        let mut stack = vec![e.to.as_str()];
        let mut seen: Vec<&str> = vec![e.to.as_str()];
        let mut cyclic = false;
        while let Some(at) = stack.pop() {
            if at == e.from {
                cyclic = true;
                break;
            }
            for &n in adj.get(at).map(Vec::as_slice).unwrap_or(&[]) {
                if !seen.contains(&n) {
                    seen.push(n);
                    stack.push(n);
                }
            }
        }
        if !cyclic {
            continue;
        }
        // One report per unordered lock pair keeps the output readable.
        let key = if e.from < e.to {
            (e.from.clone(), e.to.clone())
        } else {
            (e.to.clone(), e.from.clone())
        };
        if reported.contains(&key) {
            continue;
        }
        reported.push(key);
        out.push(Diagnostic {
            file: e.file.clone(),
            line: e.line,
            rule: "lock-order",
            message: format!(
                "lock-order cycle: `{}` -> `{}` here, and the reverse order exists \
                 elsewhere in the workspace — a deadlock under concurrency; no \
                 tidy-allow escape, one global order must be restored",
                e.from, e.to,
            ),
        });
    }
}

/// **counter-coverage** — every `tidy:kernel-hot-loop` region's
/// enclosing function must reach (transitively) a `rock_core::perf`
/// counter call; an unmetered kernel is invisible to the perf gate.
fn check_counter_coverage(
    model: &WorkspaceModel,
    by_rel: &BTreeMap<&str, &SourceFile>,
    out: &mut Vec<Diagnostic>,
) {
    // Functions that touch perf directly: a `perf::`-qualified call, or
    // a bare call resolving into core's `perf` module.
    let touches: Vec<bool> = model
        .fns
        .iter()
        .map(|f| {
            f.calls.iter().any(|c| {
                c.path.last().map(String::as_str) == Some("perf")
                    || model.resolve(f, c).iter().any(|&j| {
                        let g = &model.fns[j];
                        g.module.last().map(String::as_str) == Some("perf")
                            && g.crate_name == "core"
                    })
            })
        })
        .collect();
    for (i, f) in model.fns.iter().enumerate() {
        if f.markers.is_empty()
            || f.kind != FileKind::Lib
            || !CHECKED_LIBS.contains(&f.crate_name.as_str())
        {
            continue;
        }
        let reach = model.reach_from(&[i]);
        let metered = (0..model.fns.len()).any(|j| reach[j].is_some() && touches[j]);
        if metered {
            continue;
        }
        for &m in &f.markers {
            let site_allowed = by_rel
                .get(f.file.as_str())
                .is_some_and(|src| allowed(src, m, "counter-coverage"));
            if site_allowed {
                continue;
            }
            out.push(Diagnostic {
                file: f.file.clone(),
                line: m + 1,
                rule: "counter-coverage",
                message: format!(
                    "hot-loop region in `{}` never reaches a `perf::count_*` \
                     increment: meter the kernel or add \
                     `// tidy-allow(counter-coverage): <where it is counted>`",
                    f.display_path(),
                ),
            });
        }
    }
}

/// True when `code` names `RockError::<variant>` with a word boundary
/// after the variant (so `InvalidK` does not match `InvalidKFoo`).
fn names_variant(code: &str, variant: &str) -> bool {
    let pat = format!("RockError::{variant}");
    let mut from = 0;
    while let Some(at) = code[from..].find(&pat) {
        let end = from + at + pat.len();
        let boundary = code[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// **error-coverage** — every `RockError` variant must be constructed
/// somewhere in library code *and* matched/asserted somewhere under a
/// `tests/` tree. A variant nothing constructs is dead API surface; a
/// variant nothing tests is an error path that has never executed.
fn check_error_coverage(
    files: &[SourceFile],
    by_rel: &BTreeMap<&str, &SourceFile>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(error_file) = by_rel.get("crates/core/src/error.rs") else {
        return;
    };
    let variants = enum_variants(error_file, "RockError");
    for (variant, decl_line) in variants {
        if allowed(error_file, decl_line, "error-coverage") {
            continue;
        }
        let mut constructed = false;
        let mut tested = false;
        for f in files {
            // Only a `tests/` tree counts as tested — inline
            // `#[cfg(test)]` units don't exercise the variant through
            // the public API the way an integration test does.
            let is_test_tree = f.rel.starts_with("tests/") || f.rel.contains("/tests/");
            for (i, line) in f.lines.iter().enumerate() {
                if !names_variant(&line.code, &variant) {
                    continue;
                }
                let in_test_cfg = f.in_test.get(i).copied().unwrap_or(false);
                if is_test_tree {
                    tested = true;
                } else if f.kind == FileKind::Lib
                    && !in_test_cfg
                    && f.rel != "crates/core/src/error.rs"
                {
                    constructed = true;
                }
            }
        }
        let missing = match (constructed, tested) {
            (true, true) => continue,
            (false, true) => "never constructed in library code",
            (true, false) => "never matched or asserted under a tests/ tree",
            (false, false) => "neither constructed in library code nor named in any test",
        };
        out.push(Diagnostic {
            file: "crates/core/src/error.rs".to_string(),
            line: decl_line + 1,
            rule: "error-coverage",
            message: format!(
                "RockError::{variant} is {missing}: cover the variant or add \
                 `// tidy-allow(error-coverage): <why>` at its declaration"
            ),
        });
    }
}

/// Extracts `(variant, 0-based declaration line)` for `enum <name>` from
/// a scanned file, via the token stream: identifiers at brace depth 1
/// inside the enum body that start a variant (i.e. directly follow `{`
/// or a top-level `,`), skipping `#[…]` attribute groups.
fn enum_variants(file: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let toks = lex(&file.lines);
    let mut i = 0;
    // Find `enum <name> … {`.
    let mut body_start = None;
    while i + 1 < toks.len() {
        if toks[i].ident() == Some("enum") && toks[i + 1].ident() == Some(name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            body_start = Some(j + 1);
            break;
        }
        i += 1;
    }
    let Some(start) = body_start else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 1i32; // inside the enum braces
    let mut bracket = 0i32; // #[…] attribute groups
    let mut at_variant = true; // next depth-1 ident starts a variant
    let mut k = start;
    while k < toks.len() && depth > 0 {
        match &toks[k].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => depth -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct(',') if depth == 1 && bracket == 0 => at_variant = true,
            TokKind::Ident(w) if depth == 1 && bracket == 0 && at_variant => {
                if w.chars().next().is_some_and(char::is_uppercase) {
                    out.push((w.clone(), toks[k].line));
                }
                at_variant = false;
            }
            _ => {}
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_source;

    fn deep(files: &[(&str, &str, FileKind, &str)]) -> Vec<Diagnostic> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(rel, krate, kind, src)| load_source(rel, *kind, krate.to_string(), src))
            .collect();
        check_deep(&sources)
    }

    #[test]
    fn transitive_unwrap_from_engine_fires() {
        let d = deep(&[
            (
                "crates/core/src/engine/pipeline.rs",
                "core",
                FileKind::Lib,
                "pub fn run() { crate::util::helper(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "core",
                FileKind::Lib,
                "pub fn helper() { Some(1).unwrap(); }\n",
            ),
        ]);
        assert!(
            d.iter().any(|x| x.rule == "panic-reach" && x.file.ends_with("util.rs")),
            "{d:#?}"
        );
        // An annotated site is an accepted invariant, not a violation.
        let ok = deep(&[
            (
                "crates/core/src/engine/pipeline.rs",
                "core",
                FileKind::Lib,
                "pub fn run() { crate::util::helper(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "core",
                FileKind::Lib,
                "pub fn helper() {\n    // tidy-allow(panic): value is Some by construction\n    Some(1).unwrap();\n}\n",
            ),
        ]);
        assert!(!ok.iter().any(|x| x.rule == "panic-reach"), "{ok:#?}");
    }

    #[test]
    fn lock_cycle_has_no_escape() {
        let src = "\
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn one(&self) {
        let g = self.a.lock();
        // tidy-allow(lock-order): a before b
        let h = self.b.lock();
    }
    pub fn two(&self) {
        let g = self.b.lock();
        // tidy-allow(lock-order): b before a
        let h = self.a.lock();
    }
}
";
        let d = deep(&[("crates/core/src/serve.rs", "core", FileKind::Lib, src)]);
        assert!(
            d.iter().any(|x| x.rule == "lock-order" && x.message.contains("cycle")),
            "{d:#?}"
        );
    }

    #[test]
    fn similarity_call_under_lock_fires() {
        let src = "\
use std::sync::Mutex;
pub struct S { stats: Mutex<u32> }
impl S {
    pub fn bad(&self, m: &M, a: &P, b: &P) {
        let g = self.stats.lock();
        let s = m.similarity(a, b);
    }
}
";
        let d = deep(&[("crates/core/src/serve.rs", "core", FileKind::Lib, src)]);
        assert!(
            d.iter().any(|x| x.rule == "lock-order" && x.message.contains("similarity")),
            "{d:#?}"
        );
    }

    #[test]
    fn unmetered_hot_loop_fires_and_perf_call_clears() {
        let bad = "\
pub fn kernel(rows: &[u32]) -> u32 {
    let mut t = 0;
    // tidy:kernel-hot-loop — sum
    for r in rows { t += *r; }
    // tidy:end-kernel-hot-loop
    t
}
";
        let d = deep(&[("crates/core/src/links.rs", "core", FileKind::Lib, bad)]);
        assert!(d.iter().any(|x| x.rule == "counter-coverage"), "{d:#?}");
        let good = "\
pub fn kernel(rows: &[u32]) -> u32 {
    let mut t = 0;
    // tidy:kernel-hot-loop — sum
    for r in rows { t += *r; }
    // tidy:end-kernel-hot-loop
    crate::perf::count_bytes_touched(rows.len() as u64);
    t
}
";
        let perf = "pub fn count_bytes_touched(n: u64) {}\n";
        let d = deep(&[
            ("crates/core/src/links.rs", "core", FileKind::Lib, good),
            ("crates/core/src/perf.rs", "core", FileKind::Lib, perf),
        ]);
        assert!(!d.iter().any(|x| x.rule == "counter-coverage"), "{d:#?}");
    }

    #[test]
    fn error_variant_coverage() {
        let error_rs = "\
pub enum RockError {
    InvalidTheta,
    Unused { detail: String },
}
";
        let lib = "pub fn f() -> Result<(), RockError> { Err(RockError::InvalidTheta) }\n";
        let test = "fn t() { assert!(matches!(e, RockError::InvalidTheta)); }\n";
        let d = deep(&[
            ("crates/core/src/error.rs", "core", FileKind::Lib, error_rs),
            ("crates/core/src/lib.rs", "core", FileKind::Lib, lib),
            ("crates/core/tests/errors.rs", "core", FileKind::TestOrExample, test),
        ]);
        let msgs: Vec<&str> = d
            .iter()
            .filter(|x| x.rule == "error-coverage")
            .map(|x| x.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 1, "{d:#?}");
        assert!(msgs[0].contains("Unused"), "{msgs:?}");
    }

    #[test]
    fn enum_variant_extraction_handles_payloads() {
        let src = "\
pub enum RockError {
    A,
    B(u32),
    C { x: u32, y: String },
    #[doc = \"x\"]
    D,
}
";
        let f = load_source("crates/core/src/error.rs", FileKind::Lib, "core".into(), src);
        let names: Vec<String> = enum_variants(&f, "RockError").into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["A", "B", "C", "D"]);
    }
}

//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p rock-tidy               # human diagnostics, exit 1 on any
//! cargo run -p rock-tidy -- --ci       # same checks, terse output for CI
//! cargo run -p rock-tidy -- --json     # machine-readable report
//! cargo run -p rock-tidy -- --rule panic   # filter to one rule
//! cargo run -p rock-tidy -- --root <dir>   # explicit workspace root
//! cargo run -p rock-tidy -- --file <path>  # scan one file as core lib code
//! ```
//!
//! `--file` scans a single file under the strictest classification
//! (rock-core library code) instead of walking a workspace — the mode
//! the seeded-violation fixtures are verified with.
//!
//! Exit status: 0 when the workspace is clean, 1 on violations, 2 on
//! usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
    json: bool,
    ci: bool,
    rules: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        files: Vec::new(),
        json: false,
        ci: false,
        rules: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ci" => opts.ci = true,
            "--json" => opts.json = true,
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--file" => {
                let v = args.next().ok_or("--file needs a path")?;
                opts.files.push(PathBuf::from(v));
            }
            "--rule" => {
                let v = args.next().ok_or("--rule needs a rule name")?;
                if !known_rule(&v) {
                    return Err(format!(
                        "unknown rule `{v}` — known rules: {}",
                        known_rules().join(", ")
                    ));
                }
                opts.rules.push(v);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: rock-tidy [--ci] [--json] [--root <dir>] [--rule <name>]* \
                     [--file <path>]*"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

/// Rules emitted without being `tidy-allow`-able (they have no escape
/// hatch), still valid as `--rule` filters.
const EMIT_ONLY_RULES: &[&str] = &["annotation", "engine-contract", "shim-doc", "changelog"];

/// Every rule name a diagnostic can carry.
fn known_rules() -> Vec<&'static str> {
    let mut all: Vec<&'static str> = rock_tidy::rules::ALLOWABLE_RULES.to_vec();
    all.extend_from_slice(EMIT_ONLY_RULES);
    all.sort_unstable();
    all
}

/// True when `name` is a rule any checker can emit. A typo here must be
/// a hard error: silently filtering with a nonexistent name would make
/// `--rule panics` report a clean pass over a broken workspace.
fn known_rule(name: &str) -> bool {
    known_rules().contains(&name)
}

/// Scans the explicitly named files as rock-core library code (the
/// strictest classification, so every seeded violation fires).
fn check_named_files(files: &[PathBuf]) -> Result<Vec<rock_tidy::Diagnostic>, String> {
    let mut out = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path.to_string_lossy().replace('\\', "/");
        let file = rock_tidy::load_source(&rel, rock_tidy::FileKind::Lib, "core".to_string(), &text);
        out.extend(rock_tidy::check_file(&file));
    }
    Ok(out)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut diags = if opts.files.is_empty() {
        let root = match opts.root.or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| rock_tidy::find_root(&d))
        }) {
            Some(r) => r,
            None => {
                eprintln!("rock-tidy: no workspace root found (use --root <dir>)");
                return ExitCode::from(2);
            }
        };
        match rock_tidy::run_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("rock-tidy: I/O error walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match check_named_files(&opts.files) {
            Ok(d) => d,
            Err(msg) => {
                eprintln!("rock-tidy: {msg}");
                return ExitCode::from(2);
            }
        }
    };
    if !opts.rules.is_empty() {
        diags.retain(|d| opts.rules.iter().any(|r| r == d.rule));
    }
    if opts.json {
        println!("{}", rock_tidy::to_json(&diags));
    } else {
        for d in &diags {
            println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
        }
        if diags.is_empty() {
            if !opts.ci {
                println!("rock-tidy: workspace clean");
            }
        } else {
            eprintln!("rock-tidy: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Item extraction: from a token stream to a per-file list of function
//! definitions with the facts the deep rules care about.
//!
//! For every `fn` in a file this pass records
//!
//! * its identity — crate, module path (file path + nested `mod`s),
//!   owning `impl`/`trait` type, name, definition line and body span;
//! * the **call sites** inside its body (bare, `path::qualified` and
//!   `.method(...)` calls, with the qualifier kept for resolution);
//! * the **panic sites** (`.unwrap()`, `.expect(...)`, `panic!`,
//!   `unreachable!`) and **indexing sites** (`expr[...]`), each tagged
//!   with whether a `tidy-allow` annotation covers it;
//! * the **lock acquisitions** (`.lock()` / `.read()` / `.write()` on a
//!   binding or field declared as `Mutex`/`RwLock`), with the line span
//!   the guard is held for;
//! * the `tidy:kernel-hot-loop` markers inside the body.
//!
//! This is a single forward walk over the [`crate::lex`] tokens with a
//! brace-depth counter and small stacks for `mod`/`impl`/`trait` blocks
//! and nested `fn` items — no AST, no type information. The consumers
//! ([`crate::graph`], [`crate::deep`]) are written for the resulting
//! over-approximation: call resolution is by name, so reachability can
//! only err on the side of reporting, never of missing an edge the
//! lexical structure shows.

use crate::lex::{lex, Tok, TokKind};
use crate::rules::{allowed, FileKind, SourceFile};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (`compute_links_sparse`, `unwrap`, `scope`).
    pub name: String,
    /// Path qualifier as written, innermost last (`crate::perf::count_x`
    /// yields `["crate", "perf"]`; bare and method calls yield `[]`).
    pub path: Vec<String>,
    /// True for `.name(...)` method-call syntax.
    pub is_method: bool,
    /// 0-based line of the call.
    pub line: usize,
}

/// A panicking construct inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// What panics (`.unwrap()`, `panic!`, …).
    pub what: &'static str,
    /// 0-based line of the site.
    pub line: usize,
    /// True when a `tidy-allow(panic)` or `tidy-allow(panic-reach)`
    /// annotation with a reason covers the site.
    pub allowed: bool,
}

/// An `expr[...]` indexing site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSite {
    /// 0-based line of the site.
    pub line: usize,
    /// True when a `tidy-allow(panic-reach)` annotation covers it.
    pub allowed: bool,
}

/// A lock acquisition inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// Name of the `Mutex`/`RwLock` binding or field acquired.
    pub lock: String,
    /// 0-based line of the acquisition.
    pub line: usize,
    /// 0-based last line the guard is statically held on: the end of
    /// the enclosing block for `let guard = …` acquisitions (or the
    /// `drop(guard)` line), the acquisition line itself for temporaries.
    pub scope_end: usize,
    /// True when a `tidy-allow(lock-order)` annotation covers the site.
    pub allowed: bool,
}

/// One function definition and the facts extracted from its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Workspace-relative file the function is defined in.
    pub file: String,
    /// File classification (the deep rules only model `Lib` and `Shim`).
    pub kind: FileKind,
    /// Owning crate (classifier name: `core`, `data`, `shims/rayon`…).
    pub crate_name: String,
    /// Module path within the crate (file path segments + nested `mod`s).
    pub module: Vec<String>,
    /// `impl`/`trait` type the function belongs to, if any.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based (first, last) line of the body block; `first > last`
    /// means a bodyless declaration (trait method signature).
    pub body: (usize, usize),
    /// True for functions inside `#[cfg(test)]` regions.
    pub in_test: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Indexing sites in the body.
    pub indexes: Vec<IndexSite>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockSite>,
    /// 0-based lines of `tidy:kernel-hot-loop` markers in the body.
    pub markers: Vec<usize>,
}

impl FnItem {
    /// `crate::module::Type::name`-style display path for diagnostics.
    pub fn display_path(&self) -> String {
        let mut parts: Vec<&str> = vec![self.crate_name.as_str()];
        parts.extend(self.module.iter().map(String::as_str));
        if let Some(owner) = &self.owner {
            parts.push(owner.as_str());
        }
        parts.push(self.name.as_str());
        parts.join("::")
    }
}

/// Keywords that look like call/index receivers but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "as", "in",
    "move", "ref", "mut", "let", "static", "const", "where", "impl", "dyn", "pub", "use", "mod",
    "struct", "enum", "trait", "type", "unsafe", "async", "await", "fn", "extern",
];

/// Names whose method-call syntax acquires a lock guard.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Collects identifiers declared with a `Mutex<…>`/`RwLock<…>` type in
/// this file: `let` bindings, struct fields, statics and parameters.
///
/// For declaration position, each occurrence of a lock type is walked
/// *backwards* over wrapper types and path segments
/// (`stats: Arc<std::sync::Mutex<…>>` peels `Arc<`, `std::sync::`) to
/// the `name:` that binds it, so several fields on one line all count.
fn lock_idents(file: &SourceFile) -> Vec<String> {
    const LOCK_TYPES: &[&str] = &["Mutex<", "RwLock<"];
    let mut idents: Vec<String> = Vec::new();
    let push = |name: String, idents: &mut Vec<String>| {
        if !name.is_empty() && !idents.contains(&name) {
            idents.push(name);
        }
    };
    for line in &file.lines {
        let code = line.code.as_str();
        if !LOCK_TYPES.iter().any(|t| code.contains(t)) {
            continue;
        }
        // `let [mut] name = …` with a lock type on the line.
        if let Some(after_let) = code.trim_start().strip_prefix("let ") {
            let after_let = after_let.strip_prefix("mut ").unwrap_or(after_let);
            let name: String = after_let
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            push(name, &mut idents);
            continue;
        }
        let chars: Vec<char> = code.chars().collect();
        for t in LOCK_TYPES {
            let mut from = 0usize;
            while let Some(p) = code[from..].find(t) {
                let abs = from + p;
                from = abs + t.len();
                // Walk backwards from the type to the binding colon
                // (char offset, not byte offset — the prefix may hold
                // non-ASCII).
                let mut j = code[..abs].chars().count();
                let take_ident_back = |j: &mut usize| {
                    while *j > 0 && (chars[*j - 1].is_alphanumeric() || chars[*j - 1] == '_') {
                        *j -= 1;
                    }
                };
                let name = loop {
                    while j > 0 && chars[j - 1].is_whitespace() {
                        j -= 1;
                    }
                    if j == 0 {
                        break None;
                    }
                    match chars[j - 1] {
                        '<' | '&' => j -= 1,
                        ':' if j >= 2 && chars[j - 2] == ':' => {
                            j -= 2;
                            take_ident_back(&mut j);
                        }
                        ':' => {
                            j -= 1;
                            while j > 0 && chars[j - 1].is_whitespace() {
                                j -= 1;
                            }
                            let end = j;
                            take_ident_back(&mut j);
                            break Some(chars[j..end].iter().collect::<String>());
                        }
                        c if c.is_alphanumeric() || c == '_' => {
                            // A wrapper-type ident (`Arc`, `mut`); peel it.
                            take_ident_back(&mut j);
                        }
                        _ => break None,
                    }
                };
                if let Some(name) = name {
                    push(name, &mut idents);
                }
            }
        }
    }
    idents
}

/// Module path implied by a workspace-relative file path: the segments
/// under `src/`, minus `lib.rs`/`mod.rs`/`main.rs` file names.
fn module_path_of(rel: &str) -> Vec<String> {
    let rest = rel
        .split_once("/src/")
        .map(|(_, r)| r)
        .unwrap_or_else(|| rel.strip_prefix("src/").unwrap_or(rel));
    let mut parts: Vec<String> = rest.split('/').map(str::to_string).collect();
    if let Some(last) = parts.last_mut() {
        if let Some(stem) = last.strip_suffix(".rs") {
            *last = stem.to_string();
        }
    }
    if matches!(parts.last().map(String::as_str), Some("lib" | "mod" | "main")) {
        parts.pop();
    }
    parts
}

/// A block that changes naming context, tracked by its open depth.
struct Block {
    /// `mod` name pushed onto the module path, or `impl`/`trait` owner.
    name: String,
    /// True for `impl`/`trait` blocks (owner), false for `mod`.
    is_owner: bool,
    /// Brace depth at which the block's `{` sits.
    depth: u32,
}

/// An active (open-bodied) function during the walk.
struct ActiveFn {
    /// Index into the output items.
    item: usize,
    /// Brace depth of the body's opening `{`.
    depth: u32,
}

/// A lock guard currently statically held during the walk.
struct OpenGuard {
    /// Index into the output items.
    item: usize,
    /// Index into that item's `locks`.
    site: usize,
    /// Brace depth the binding lives at.
    depth: u32,
    /// Binding name, for `drop(name)` detection.
    binding: Option<String>,
}

/// Extracts every function item from `file`. See the module docs for
/// what is recorded; functions inside `#[cfg(test)]` regions are kept
/// (flagged `in_test`) so callers can decide scope.
pub fn extract(file: &SourceFile) -> Vec<FnItem> {
    let toks = lex(&file.lines);
    let locks = lock_idents(file);
    let base_module = module_path_of(&file.rel);

    let mut items: Vec<FnItem> = Vec::new();
    let mut blocks: Vec<Block> = Vec::new();
    let mut active: Vec<ActiveFn> = Vec::new();
    let mut guards: Vec<OpenGuard> = Vec::new();
    let mut depth: u32 = 0;
    // A `fn` whose signature has been read but whose body `{` has not
    // been seen yet.
    let mut pending_fn: Option<usize> = None;

    let ident_at = |i: usize| -> Option<&str> { toks.get(i).and_then(Tok::ident) };
    let punct_at = |i: usize, c: char| -> bool { toks.get(i).is_some_and(|t| t.is_punct(c)) };

    let mut i = 0usize;
    while i < toks.len() {
        let tok = &toks[i];
        match &tok.kind {
            TokKind::Ident(word) if word == "mod" => {
                if let Some(name) = ident_at(i + 1) {
                    // Only a `mod name {` block changes the path; a
                    // `mod name;` declaration points at another file.
                    if punct_at(i + 2, '{') {
                        blocks.push(Block {
                            name: name.to_string(),
                            is_owner: false,
                            depth,
                        });
                    }
                    i += 2;
                    continue;
                }
                i += 1;
            }
            TokKind::Ident(word) if word == "impl" || word == "trait" => {
                let (owner, next) = parse_owner(&toks, i, word == "trait");
                if let Some(name) = owner {
                    blocks.push(Block {
                        name,
                        is_owner: true,
                        depth,
                    });
                }
                i = next;
            }
            TokKind::Ident(word) if word == "fn" => {
                let Some(name) = ident_at(i + 1) else {
                    // `fn(...)` pointer type, not a definition.
                    i += 1;
                    continue;
                };
                let owner = blocks
                    .iter()
                    .rev()
                    .find(|b| b.is_owner)
                    .map(|b| b.name.clone());
                let mut module = base_module.clone();
                module.extend(blocks.iter().filter(|b| !b.is_owner).map(|b| b.name.clone()));
                items.push(FnItem {
                    file: file.rel.clone(),
                    kind: file.kind,
                    crate_name: file.crate_name.clone(),
                    module,
                    owner,
                    name: name.to_string(),
                    line: tok.line,
                    body: (usize::MAX, 0),
                    in_test: file.in_test.get(tok.line).copied().unwrap_or(false),
                    calls: Vec::new(),
                    panics: Vec::new(),
                    indexes: Vec::new(),
                    locks: Vec::new(),
                    markers: Vec::new(),
                });
                pending_fn = Some(items.len() - 1);
                i += 2;
            }
            TokKind::Punct('{') => {
                depth += 1;
                if let Some(item) = pending_fn.take() {
                    items[item].body.0 = tok.line;
                    active.push(ActiveFn { item, depth });
                }
                i += 1;
            }
            TokKind::Punct('}') => {
                // Close guards, functions and blocks opened at this depth.
                while let Some(g) = guards.last() {
                    if g.depth == depth {
                        let g = guards.pop().expect("guard just observed");
                        items[g.item].locks[g.site].scope_end = tok.line;
                    } else {
                        break;
                    }
                }
                if active.last().is_some_and(|f| f.depth == depth) {
                    let f = active.pop().expect("active fn just observed");
                    items[f.item].body.1 = tok.line;
                }
                depth = depth.saturating_sub(1);
                // A block records the depth its `{` sat at, so it closes
                // once depth returns to that value.
                while blocks.last().is_some_and(|b| b.depth >= depth) {
                    blocks.pop();
                }
                i += 1;
            }
            TokKind::Punct(';') => {
                // A bodyless `fn` declaration (trait signature) ends here
                // if no body was opened. Only at the depth the fn was
                // declared; `;` inside `[u8; 4]` in the signature is rare
                // enough to accept the (harmless) early close.
                if let Some(item) = pending_fn.take() {
                    items[item].body = (usize::MAX, 0);
                }
                i += 1;
            }
            TokKind::Punct('(') => {
                if let Some(site) = classify_call(&toks, i, file) {
                    record_call(site, &toks, i, file, &mut items, &active, &locks, &mut guards, depth);
                }
                i += 1;
            }
            TokKind::Punct('[') => {
                if let Some(f) = active.last() {
                    if is_index_site(&toks, i) {
                        let line = tok.line;
                        let item = &mut items[f.item];
                        if item.indexes.last().map(|s| s.line) != Some(line) {
                            item.indexes.push(IndexSite {
                                line,
                                allowed: allowed(file, line, "panic-reach"),
                            });
                        }
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    // Attribute hot-loop markers to the function whose body contains them.
    for (lineno, line) in file.lines.iter().enumerate() {
        if !line.comment.trim_start().starts_with("tidy:kernel-hot-loop") {
            continue;
        }
        if let Some(item) = items
            .iter_mut()
            .filter(|it| it.body.0 <= lineno && lineno <= it.body.1)
            .max_by_key(|it| it.body.0)
        {
            item.markers.push(lineno);
        }
    }
    items
}

/// Parses the owner type of an `impl`/`trait` block starting at token
/// `at`; returns the owner name (if the block has a body) and the token
/// index to resume from.
fn parse_owner(toks: &[Tok], at: usize, is_trait: bool) -> (Option<String>, usize) {
    if is_trait {
        // `trait Name …` — the name is the next identifier; scan to the
        // body `{` or a `;` (associated-trait declarations).
        let name = toks.get(at + 1).and_then(Tok::ident).map(str::to_string);
        let mut j = at + 1;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                return (name, j);
            }
            if toks[j].is_punct(';') {
                return (None, j + 1);
            }
            j += 1;
        }
        return (None, j);
    }
    // `impl …` — collect path identifiers outside generic arguments; a
    // `for` keyword restarts the collection (the type is after it), a
    // `where` keyword stops it.
    let mut angle: i32 = 0;
    let mut last: Option<String> = None;
    let mut j = at + 1;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            // `->` inside a bound is not a generic close.
            TokKind::Punct('>') if !(j > 0 && toks[j - 1].is_punct('-')) => {
                angle = (angle - 1).max(0);
            }
            TokKind::Punct('{') if angle == 0 => return (last, j),
            TokKind::Punct(';') if angle == 0 => return (None, j + 1),
            TokKind::Ident(w) if angle == 0 => {
                if w == "for" {
                    last = None;
                } else if w == "where" {
                    // Type already seen; skip to the body.
                } else if w != "dyn" && w != "mut" && w != "const" {
                    last = Some(w.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (None, j)
}

/// What kind of call a `(` token introduces.
struct Classified {
    name: String,
    path: Vec<String>,
    is_method: bool,
    is_macro: bool,
    line: usize,
}

/// Looks backwards from the `(` at token `at` to classify the call, or
/// `None` when the paren is grouping/tuple syntax.
fn classify_call(toks: &[Tok], at: usize, _file: &SourceFile) -> Option<Classified> {
    if at == 0 {
        return None;
    }
    let mut k = at - 1;
    let mut is_macro = false;
    if toks[k].is_punct('!') {
        if k == 0 {
            return None;
        }
        is_macro = true;
        k -= 1;
    }
    let name = toks[k].ident()?;
    if KEYWORDS.contains(&name) {
        return None;
    }
    // `fn name(` is a definition, not a call.
    if k > 0 && toks[k - 1].ident() == Some("fn") {
        return None;
    }
    let line = toks[at].line;
    // Walk the `a::b::name` qualifier backwards.
    let mut path_rev: Vec<String> = Vec::new();
    let mut p = k;
    while p >= 2 && toks[p - 1].is_punct(':') && toks[p - 2].is_punct(':') {
        if p >= 3 {
            if let Some(seg) = toks[p - 3].ident() {
                path_rev.push(seg.to_string());
                p -= 3;
                continue;
            }
        }
        break;
    }
    let is_method = p > 0 && toks[p - 1].is_punct('.') && path_rev.is_empty();
    let mut path: Vec<String> = path_rev.into_iter().rev().collect();
    // Keep at most the two innermost qualifier segments — resolution
    // only ever keys on them.
    if path.len() > 2 {
        path = path.split_off(path.len() - 2);
    }
    Some(Classified {
        name: name.to_string(),
        path,
        is_method,
        is_macro,
        line,
    })
}

/// Records a classified call into the active function: as a panic site,
/// a lock acquisition, a `drop(guard)` release, and/or a plain call.
#[allow(clippy::too_many_arguments)]
fn record_call(
    site: Classified,
    toks: &[Tok],
    at: usize,
    file: &SourceFile,
    items: &mut [FnItem],
    active: &[ActiveFn],
    lock_names: &[String],
    guards: &mut Vec<OpenGuard>,
    depth: u32,
) {
    let Some(f) = active.last() else { return };
    let item_idx = f.item;
    let line = site.line;
    if site.is_macro {
        let what = match site.name.as_str() {
            "panic" => Some("panic!"),
            "unreachable" => Some("unreachable!"),
            _ => None,
        };
        if let Some(what) = what {
            items[item_idx].panics.push(PanicSite {
                what,
                line,
                allowed: allowed(file, line, "panic") || allowed(file, line, "panic-reach"),
            });
        }
        return;
    }
    if site.is_method && (site.name == "unwrap" || site.name == "expect") {
        let what = if site.name == "unwrap" {
            ".unwrap()"
        } else {
            ".expect(...)"
        };
        items[item_idx].panics.push(PanicSite {
            what,
            line,
            allowed: allowed(file, line, "panic") || allowed(file, line, "panic-reach"),
        });
        // `.unwrap()` is also a call token; fall through to record it so
        // resolution stays uniform (it resolves to nothing).
    }
    if site.is_method && LOCK_METHODS.contains(&site.name.as_str()) {
        // Receiver: the identifier before the `.` that precedes the name.
        let recv = (at >= 3)
            .then(|| toks[at - 3].ident())
            .flatten()
            .map(str::to_string);
        if let Some(recv) = recv {
            if lock_names.iter().any(|l| l == &recv) {
                let code = file
                    .lines
                    .get(line)
                    .map(|l| l.code.trim_start())
                    .unwrap_or("");
                let scoped = code.starts_with("let ");
                let binding = scoped.then(|| {
                    code.strip_prefix("let ")
                        .map(|r| r.strip_prefix("mut ").unwrap_or(r))
                        .map(|r| {
                            r.chars()
                                .take_while(|c| c.is_alphanumeric() || *c == '_')
                                .collect::<String>()
                        })
                        .unwrap_or_default()
                });
                items[item_idx].locks.push(LockSite {
                    lock: recv,
                    line,
                    scope_end: line,
                    allowed: allowed(file, line, "lock-order"),
                });
                if scoped {
                    guards.push(OpenGuard {
                        item: item_idx,
                        site: items[item_idx].locks.len() - 1,
                        depth,
                        binding,
                    });
                }
            }
        }
    }
    if site.name == "drop" && !site.is_method {
        if let Some(arg) = toks.get(at + 1).and_then(Tok::ident) {
            if let Some(pos) = guards
                .iter()
                .rposition(|g| g.binding.as_deref() == Some(arg))
            {
                let g = guards.remove(pos);
                items[g.item].locks[g.site].scope_end = line;
            }
        }
    }
    items[item_idx].calls.push(CallSite {
        name: site.name,
        path: site.path,
        is_method: site.is_method,
        line,
    });
}

/// True when the `[` at token `at` indexes an expression (rather than
/// opening an attribute, a slice type or an array literal).
fn is_index_site(toks: &[Tok], at: usize) -> bool {
    if at == 0 {
        return false;
    }
    match &toks[at - 1].kind {
        TokKind::Ident(w) => !KEYWORDS.contains(&w.as_str()),
        TokKind::Punct(')') | TokKind::Punct(']') => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_source;

    fn items_of(rel: &str, src: &str) -> Vec<FnItem> {
        let file = load_source(rel, FileKind::Lib, "core".to_string(), src);
        extract(&file)
    }

    #[test]
    fn module_paths_from_file_layout() {
        assert_eq!(module_path_of("crates/core/src/engine/pipeline.rs"), ["engine", "pipeline"]);
        assert!(module_path_of("crates/core/src/lib.rs").is_empty());
        assert_eq!(module_path_of("crates/core/src/util/mod.rs"), ["util"]);
        assert!(module_path_of("src/lib.rs").is_empty());
    }

    #[test]
    fn extracts_fns_with_owner_and_calls() {
        let src = "\
pub fn free() { helper(1); }
fn helper(x: u32) -> u32 { x }
impl Foo {
    pub fn method(&self) {
        self.other();
        crate::perf::count_pairs_emitted(1);
    }
}
impl Centroid for Vec<f64> {
    fn centroid(reps: &[Self]) -> Option<Self> { None }
}
";
        let items = items_of("crates/core/src/x.rs", src);
        let names: Vec<_> = items.iter().map(|f| f.display_path()).collect();
        assert_eq!(
            names,
            vec!["core::x::free", "core::x::helper", "core::x::Foo::method", "core::x::Vec::centroid"]
        );
        assert_eq!(items[0].calls.len(), 1);
        assert_eq!(items[0].calls[0].name, "helper");
        assert!(!items[0].calls[0].is_method);
        let method = &items[2];
        assert!(method.calls.iter().any(|c| c.name == "other" && c.is_method));
        assert!(method
            .calls
            .iter()
            .any(|c| c.name == "count_pairs_emitted" && c.path == ["crate", "perf"]));
    }

    #[test]
    fn panic_and_index_sites_with_allows() {
        let src = "\
pub fn f(xs: &[u32], o: Option<u32>) -> u32 {
    let a = xs[0];
    // tidy-allow(panic-reach): o is Some by construction here
    let b = o.unwrap();
    let c = a + b;
    let d = c + 1;
    if a > 1 { panic!(\"boom\") }
    d
}
";
        let items = items_of("crates/core/src/x.rs", src);
        let f = &items[0];
        assert_eq!(f.indexes.len(), 1);
        assert_eq!(f.indexes[0].line, 1);
        assert!(!f.indexes[0].allowed);
        assert_eq!(f.panics.len(), 2);
        assert!(f.panics[0].allowed, "annotated unwrap");
        assert_eq!(f.panics[1].what, "panic!");
        assert!(!f.panics[1].allowed, "annotation window is two lines, panic sits outside it");
    }

    #[test]
    fn attribute_brackets_are_not_index_sites() {
        let src = "\
#[derive(Clone)]
pub struct S;
pub fn f(v: Vec<u32>) -> Vec<u32> {
    #[allow(unused)]
    let x = vec![1, 2];
    v
}
";
        let items = items_of("crates/core/src/x.rs", src);
        assert!(items[0].indexes.is_empty(), "{:#?}", items[0].indexes);
    }

    #[test]
    fn lock_sites_and_guard_scopes() {
        let src = "\
use std::sync::Mutex;
pub struct S { stats: Mutex<u64>, log: Mutex<Vec<u32>> }
impl S {
    pub fn nested(&self) {
        let s = self.stats.lock();
        {
            let l = self.log.lock();
        }
    }
    pub fn transient(&self) {
        self.stats.lock();
    }
    pub fn dropped(&self) {
        let s = self.stats.lock();
        drop(s);
        let l = self.log.lock();
    }
}
";
        let items = items_of("crates/core/src/x.rs", src);
        let nested = &items[0];
        assert_eq!(nested.locks.len(), 2);
        assert_eq!(nested.locks[0].lock, "stats");
        assert!(nested.locks[0].scope_end > nested.locks[1].line, "stats held across log");
        let transient = &items[1];
        assert_eq!(transient.locks[0].scope_end, transient.locks[0].line);
        let dropped = &items[2];
        assert_eq!(dropped.locks[0].lock, "stats");
        assert_eq!(dropped.locks[0].scope_end, dropped.locks[0].line + 1, "released at drop()");
        assert!(dropped.locks[1].line > dropped.locks[0].scope_end);
    }

    #[test]
    fn markers_attach_to_the_enclosing_fn() {
        let src = "\
pub fn outer(rows: &[u32]) -> u32 {
    let mut total = 0;
    // tidy:kernel-hot-loop — summation
    for r in rows { total += *r; }
    // tidy:end-kernel-hot-loop
    total
}
pub fn plain() {}
";
        let items = items_of("crates/core/src/x.rs", src);
        assert_eq!(items[0].markers, vec![2]);
        assert!(items[1].markers.is_empty());
    }

    #[test]
    fn cfg_test_fns_are_flagged() {
        let src = "\
pub fn lib() {}
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
";
        let items = items_of("crates/core/src/x.rs", src);
        assert!(!items[0].in_test);
        assert!(items[1].in_test);
        assert_eq!(items[1].module, vec!["x", "tests"]);
    }

    #[test]
    fn trait_methods_get_the_trait_as_owner() {
        let src = "\
pub trait Model {
    fn fit(&self) -> u32;
    fn save(&self) -> u32 { self.fit() }
}
";
        let items = items_of("crates/core/src/x.rs", src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].owner.as_deref(), Some("Model"));
        assert!(items[0].body.0 > items[0].body.1, "signature has no body");
        assert_eq!(items[1].name, "save");
        assert!(items[1].calls.iter().any(|c| c.name == "fit" && c.is_method));
    }
}

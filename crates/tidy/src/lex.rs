//! A token lexer over the [`crate::scan`] output.
//!
//! The scanner already did the hard lexical work — comments stripped
//! into their own channel, string/char-literal contents blanked — so
//! this pass only has to split the remaining *code* text into
//! identifiers and punctuation, tagged with their line. That is exactly
//! enough structure for the item extractor ([`crate::items`]) to
//! recognise `fn` definitions, call sites, paths and brace nesting
//! without a grammar: a pattern like `.unwrap()` appearing inside a
//! string or comment never reaches this layer at all.

use crate::scan::SourceLine;

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier, keyword or numeric literal (`fn`, `unwrap`, `42`).
    Ident(String),
    /// A single punctuation character (`{`, `(`, `.`, `:`, `!`, …).
    Punct(char),
}

/// A token plus the 0-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 0-based source line index.
    pub line: usize,
    /// What the token is.
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            TokKind::Punct(_) => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes the code channel of scanned `lines` into a flat token stream.
///
/// Identifiers follow Rust rules (`[A-Za-z_][A-Za-z0-9_]*`); numeric
/// literals are emitted as `Ident` tokens too (the consumers only ever
/// compare against known names, so the conflation is harmless).
/// Everything else that is not whitespace becomes a one-character
/// `Punct` token — multi-character operators (`::`, `->`, `..`) appear
/// as adjacent puncts, which the item extractor reassembles where it
/// cares.
pub fn lex(lines: &[SourceLine]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (lineno, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    line: lineno,
                    kind: TokKind::Ident(chars[start..i].iter().collect()),
                });
            } else {
                toks.push(Tok {
                    line: lineno,
                    kind: TokKind::Punct(c),
                });
                i += 1;
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn idents(src: &str) -> Vec<String> {
        lex(&scan(src))
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn splits_idents_and_puncts() {
        let toks = lex(&scan("fn f(x: u32) { x.unwrap() }\n"));
        let names: Vec<_> = toks.iter().filter_map(Tok::ident).collect();
        assert_eq!(names, vec!["fn", "f", "x", "u32", "x", "unwrap"]);
        assert!(toks.iter().any(|t| t.is_punct('{')));
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn tokens_carry_line_numbers() {
        let toks = lex(&scan("a\nb\n\nc\n"));
        let lines: Vec<_> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![0, 1, 3]);
    }

    #[test]
    fn comments_and_strings_yield_no_tokens() {
        assert_eq!(
            idents("// only .unwrap() in a comment\nlet s = \"panic!(boom)\";\n"),
            vec!["let", "s"]
        );
    }
}

//! A line-oriented Rust source scanner.
//!
//! The rule checkers match textual patterns (`.unwrap()`, `Instant::now`,
//! …), so the scanner's job is to make those matches *meaningful*: it
//! splits every source line into the part that is **code** and the part
//! that is **comment**, with string/char-literal *contents* blanked out of
//! the code text. A pattern occurring inside a string literal, a doc
//! comment or a block comment therefore never triggers a rule, while
//! `// SAFETY:` and `// tidy-allow(...)` annotations are searched only in
//! comment text.
//!
//! This is deliberately not a full lexer — it is the rustc-`tidy` style
//! 90% solution: enough states (line comments, nested block comments,
//! plain/byte/raw strings, char literals vs. lifetimes) to be reliable on
//! idiomatic Rust, in ~150 lines with no dependencies.

/// One source line, split into code and comment text.
#[derive(Debug, Clone, Default)]
pub struct SourceLine {
    /// The code on this line, with string and char literal contents
    /// removed (the delimiting quotes are kept, so `.expect("msg")`
    /// scans as `.expect("")`).
    pub code: String,
    /// The concatenated comment text on this line (line comments, doc
    /// comments and block-comment interiors alike).
    pub comment: String,
}

/// Lexer state carried across lines.
enum State {
    Code,
    /// Inside `/* … */`, with the current nesting depth.
    Block(u32),
    /// Inside a `"…"` or `b"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`s.
    RawStr(usize),
}

/// Splits `text` into per-line code/comment records.
pub fn scan(text: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut cur = SourceLine::default();
    let mut state = State::Code;
    let mut i = 0usize;
    let n = chars.len();

    // Closures cannot borrow `cur` mutably while we also push to `lines`,
    // so line finalization is inlined at the newline branches below.
    while i < n {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            // A line comment ends at the newline; block constructs span.
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                let prev_ident = i > 0
                    && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if c == '/' && next == Some('/') {
                    // Line comment (incl. `///` and `//!`): consume to EOL.
                    i += 2;
                    while i < n && chars[i] != '\n' {
                        cur.comment.push(chars[i]);
                        i += 1;
                    }
                } else if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    cur.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    cur.code.push('"');
                    i += 1;
                } else if (c == 'b' || c == 'c') && next == Some('"') && !prev_ident {
                    // Byte/C string: `b"…"` scans like a plain string.
                    state = State::Str;
                    cur.code.push(c);
                    cur.code.push('"');
                    i += 2;
                } else if c == 'r' && !prev_ident && matches!(next, Some('"') | Some('#')) {
                    // Raw string `r"…"`, `r#"…"#`, … (also after `b`).
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        cur.code.push_str("r\"");
                        i = j + 1;
                    } else {
                        // `r#ident` raw identifier or stray `r#`: plain code.
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == 'b' && next == Some('r') && !prev_ident {
                    // `br"…"` / `br#"…"#`: delegate to the `r` branch.
                    cur.code.push('b');
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs. lifetime. `'\…'` and `'x'` are
                    // literals; anything else (`'a`, `'static`) is a
                    // lifetime tick left in the code text.
                    if next == Some('\\') {
                        cur.code.push_str("''");
                        i += 2; // past `'\`
                        if i < n {
                            i += 1; // the escaped char itself
                        }
                        // Consume up to the closing quote (covers \u{…}).
                        while i < n && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        if i < n && chars[i] == '\'' {
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                        cur.code.push_str("''");
                        i += 3;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char — except a line continuation,
                    // whose newline must still finalize the line record.
                    i += if chars.get(i + 1) == Some(&'\n') { 1 } else { 2 };
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && chars[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Marks the lines belonging to `#[cfg(test)]` items (the seeded-violation
/// rules only apply to library code; unit-test modules are exempt).
///
/// The region starts at the attribute and ends at the close of the first
/// brace-balanced block that follows — or at a top-level `;` if the
/// attribute gates a braceless item (`#[cfg(test)] use …;`).
pub fn test_regions(lines: &[SourceLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            in_test[j] = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened && depth == 0 => {
                        // Braceless gated item: region ends here.
                        opened = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

/// True if `code` contains `ident` as a standalone word (not a prefix or
/// suffix of a longer identifier).
pub fn contains_word(code: &str, ident: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(ident) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + ident.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + ident.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments() {
        let l = scan("let x = 1; // a .unwrap() in a comment\n");
        assert_eq!(l[0].code.trim_end(), "let x = 1;");
        assert!(l[0].comment.contains(".unwrap()"));
    }

    #[test]
    fn blanks_string_contents() {
        let l = scan("foo.expect(\"contains .unwrap() text\");\n");
        assert_eq!(l[0].code, "foo.expect(\"\");");
    }

    #[test]
    fn raw_strings_and_escapes() {
        let l = scan("let s = r#\"panic!(\"boom\")\"#; let t = \"a\\\"b\";\n");
        assert!(!l[0].code.contains("panic!"));
        assert!(!l[0].code.contains("a\\"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let l = scan("a /* one /* two */ still */ b\nc /* open\n.unwrap()\n*/ d\n");
        assert_eq!(l[0].code.replace(' ', ""), "ab");
        assert_eq!(l[2].code, "");
        assert!(l[2].comment.contains(".unwrap()"));
        assert!(l[3].code.contains('d'));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let l = scan("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; }\n");
        // The quote characters inside char literals must not open strings.
        assert!(l[0].code.contains("let d"));
        assert!(l[0].code.contains("&'a str"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let lines = scan(src);
        let t = test_regions(&lines);
        assert_eq!(t, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_braceless_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let t = test_regions(&scan(src));
        assert_eq!(t, vec![true, true, false]);
    }

    #[test]
    fn cfg_attr_test_is_not_a_region() {
        let src = "#![cfg_attr(test, allow(clippy::unwrap_used))]\nfn lib() { x.unwrap(); }\n";
        let t = test_regions(&scan(src));
        assert_eq!(t, vec![false, false]);
    }

    #[test]
    fn word_matching() {
        assert!(contains_word("for x in by_root {", "by_root"));
        assert!(!contains_word("by_root_extra.iter()", "by_root"));
        assert!(!contains_word("unsafe_code", "unsafe"));
        assert!(contains_word("unsafe { x }", "unsafe"));
    }
}

//! The US mutual-fund time-series data set (§5.1, Table 4).
//!
//! The paper clusters 795 funds by the *sign pattern* of their daily
//! closing-price changes over 548 business days (Jan 4 1993 – Mar 3
//! 1995): each day becomes a categorical attribute with domain
//! {Up, Down, No}; days before a fund's inception are missing values,
//! and similarity uses the pair-restricted policy of §3.1.2
//! ([`rock_core::similarity::MissingPolicy::CommonAttributes`]).
//!
//! The original MIT AI Lab price server is long gone, so
//! [`generate_funds`] substitutes a **factor model**: every fund's daily
//! return is `β·market(t) + group(t) + ε`, funds in the same group share
//! the group factor, and staggered inception dates reproduce the missing
//! prefixes of young funds. The group list and sizes follow Table 4;
//! additional 2-fund groups model the paper's 24 interesting size-2
//! clusters (e.g. the two funds run by the same portfolio manager), and
//! the rest are idiosyncratic outliers.

use crate::dist::{standard_normal, Normal};
use rand::Rng;
use rock_core::points::{CategoricalRecord, CategoricalSchema};

/// A named fund group with a size and volatility profile.
#[derive(Clone, Debug)]
pub struct FundGroup {
    /// Cluster name (Table 4, column 1).
    pub name: String,
    /// Number of funds.
    pub size: usize,
    /// Market beta.
    pub beta: f64,
    /// Daily group-factor volatility.
    pub group_vol: f64,
    /// Daily idiosyncratic volatility (should be well below `group_vol`
    /// for the group to be discoverable).
    pub idio_vol: f64,
}

/// Specification of the generated fund universe.
#[derive(Clone, Debug)]
pub struct FundSpec {
    /// Named groups (Table 4's 16 clusters by default).
    pub groups: Vec<FundGroup>,
    /// Number of additional 3-fund mini-families (paper: 24 interesting
    /// clusters of size 2). A *pair* of funds with no third similar fund
    /// has `link = 0` (links count common neighbors) and can never be
    /// merged by ROCK, so each mini-family carries three correlated
    /// funds; clustering typically recovers them as size-3 or size-2
    /// clusters.
    pub num_pairs: usize,
    /// Number of idiosyncratic outlier funds.
    pub num_outliers: usize,
    /// Number of business days (paper: 548 price dates → 548 attributes;
    /// we generate `days + 1` prices so every day has a change).
    pub days: usize,
    /// Fraction of funds that are "young" (late inception, missing
    /// prefix).
    pub young_fraction: f64,
    /// Latest possible inception day for a young fund.
    pub max_inception: usize,
    /// Returns with |r| below this become `No` change.
    pub no_band: f64,
}

impl FundSpec {
    /// The Table-4 configuration: 16 named groups (304 funds), 24 pairs,
    /// and outliers padding the universe to 795 funds over 548 days.
    pub fn paper() -> Self {
        let g = |name: &str, size: usize, beta: f64, group_vol: f64| FundGroup {
            name: name.to_owned(),
            size,
            beta,
            group_vol,
            idio_vol: group_vol / 12.0,
        };
        let groups = vec![
            g("Bonds 1", 4, 0.05, 0.0030),
            g("Bonds 2", 10, 0.05, 0.0031),
            g("Bonds 3", 24, 0.05, 0.0032),
            g("Bonds 4", 15, 0.05, 0.0033),
            g("Bonds 5", 5, 0.06, 0.0034),
            g("Bonds 6", 3, 0.06, 0.0035),
            g("Bonds 7", 26, 0.06, 0.0036),
            g("Financial Service", 3, 0.9, 0.0080),
            g("Precious Metals", 10, -0.2, 0.0120),
            g("International 1", 4, 0.4, 0.0090),
            g("International 2", 4, 0.4, 0.0095),
            g("International 3", 6, 0.4, 0.0100),
            g("Balanced", 5, 0.6, 0.0050),
            g("Growth 1", 8, 1.0, 0.0070),
            g("Growth 2", 107, 1.0, 0.0072),
            g("Growth 3", 70, 1.1, 0.0074),
        ];
        let named: usize = groups.iter().map(|g| g.size).sum(); // 304
        FundSpec {
            groups,
            num_pairs: 24,
            num_outliers: 795 - named - 3 * 24, // 419
            days: 548,
            young_fraction: 0.25,
            max_inception: 400,
            no_band: 0.0003,
        }
    }

    /// A scaled-down variant: group sizes multiplied by `scale`
    /// (minimum 2), pairs/outliers/days scaled likewise.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn paper_scaled(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut spec = Self::paper();
        for gr in &mut spec.groups {
            gr.size = ((gr.size as f64 * scale).round() as usize).max(2);
        }
        spec.num_pairs = ((spec.num_pairs as f64 * scale).round() as usize).max(1);
        spec.num_outliers = ((spec.num_outliers as f64 * scale).round() as usize).max(1);
        spec.days = ((spec.days as f64 * scale.max(0.25)).round() as usize).max(40);
        spec.max_inception = spec.days * 3 / 4;
        spec
    }

    /// Total number of funds.
    pub fn total_funds(&self) -> usize {
        self.groups.iter().map(|g| g.size).sum::<usize>() + 3 * self.num_pairs + self.num_outliers
    }
}

/// One generated fund.
#[derive(Clone, Debug)]
pub struct Fund {
    /// Synthetic ticker, e.g. `"GROWTH2-041"`.
    pub ticker: String,
    /// Group index into [`FundData::group_names`], or `None` for
    /// outliers.
    pub group: Option<usize>,
    /// Closing prices; `None` before inception.
    pub prices: Vec<Option<f64>>,
}

/// The generated universe.
#[derive(Clone, Debug)]
pub struct FundData {
    /// The funds (shuffled).
    pub funds: Vec<Fund>,
    /// Up/Down/No records per fund (aligned with `funds`); attribute `t`
    /// is the change from day `t` to day `t+1`, missing before
    /// inception.
    pub records: Vec<CategoricalRecord>,
    /// Schema: one {No, Up, Down} attribute per day.
    pub schema: CategoricalSchema,
    /// Group names: the named Table-4 groups, then `"Pair i"` entries.
    pub group_names: Vec<String>,
}

/// Value ids in each day attribute's domain.
pub mod change {
    /// No change (|r| within the no-band).
    pub const NO: u32 = 0;
    /// Price went up.
    pub const UP: u32 = 1;
    /// Price went down.
    pub const DOWN: u32 = 2;
}

/// The per-day {No, Up, Down} schema for `days` attributes.
pub fn fund_schema(days: usize) -> CategoricalSchema {
    let mut schema = CategoricalSchema::new();
    for d in 0..days {
        schema.add_attribute(&format!("day-{d:03}"), vec!["no", "up", "down"]);
    }
    schema
}

/// Discretises a price series into an Up/Down/No record (§5.1): attribute
/// `t` compares `prices[t+1]` with `prices[t]`; missing if either is
/// absent.
pub fn prices_to_record(prices: &[Option<f64>], no_band: f64) -> CategoricalRecord {
    let values = prices
        .windows(2)
        .map(|w| match (w[0], w[1]) {
            (Some(prev), Some(next)) => {
                let r = next / prev - 1.0;
                Some(if r > no_band {
                    change::UP
                } else if r < -no_band {
                    change::DOWN
                } else {
                    change::NO
                })
            }
            _ => None,
        })
        .collect();
    CategoricalRecord::new(values)
}

/// Generates the fund universe from `spec`.
pub fn generate_funds<R: Rng + ?Sized>(spec: &FundSpec, rng: &mut R) -> FundData {
    let days = spec.days;
    let schema = fund_schema(days);
    // Market factor, shared by everyone.
    let market = Normal::new(0.0003, 0.006);
    let market_path: Vec<f64> = (0..days).map(|_| market.sample(rng)).collect();

    let mut group_names: Vec<String> = spec.groups.iter().map(|g| g.name.clone()).collect();
    let mut funds: Vec<Fund> = Vec::with_capacity(spec.total_funds());

    let make_fund = |ticker: String,
                         group: Option<usize>,
                         beta: f64,
                         group_path: Option<&[f64]>,
                         idio_vol: f64,
                         rng: &mut R| {
        let inception = if rng.random::<f64>() < spec.young_fraction {
            rng.random_range(1..=spec.max_inception)
        } else {
            0
        };
        let mut prices: Vec<Option<f64>> = vec![None; days + 1];
        let mut price = 10.0 + rng.random::<f64>() * 40.0;
        for t in inception..=days {
            if t > inception {
                let g = group_path.map_or(0.0, |p| p[t - 1]);
                let r = beta * market_path[t - 1] + g + idio_vol * standard_normal(rng);
                price *= 1.0 + r;
            }
            prices[t] = Some(price);
        }
        Fund {
            ticker,
            group,
            prices,
        }
    };

    let mut group_paths: Vec<Vec<f64>> = Vec::with_capacity(spec.groups.len());
    for (gi, g) in spec.groups.iter().enumerate() {
        let group_dist = Normal::new(0.0, g.group_vol);
        let path: Vec<f64> = (0..days).map(|_| group_dist.sample(rng)).collect();
        for i in 0..g.size {
            let ticker = format!("{}-{i:03}", g.name.to_uppercase().replace(' ', ""));
            funds.push(make_fund(ticker, Some(gi), g.beta, Some(&path), g.idio_vol, rng));
        }
        group_paths.push(path);
    }
    // Mini-families of three correlated funds (see `FundSpec::num_pairs`
    // for why two is not enough under a link-based merge criterion).
    for p in 0..spec.num_pairs {
        let gi = group_names.len();
        group_names.push(format!("Pair {p}"));
        let vol = 0.004 + rng.random::<f64>() * 0.008;
        let beta = rng.random::<f64>() * 1.2;
        let dist = Normal::new(0.0, vol);
        let path: Vec<f64> = (0..days).map(|_| dist.sample(rng)).collect();
        for i in 0..3 {
            funds.push(make_fund(
                format!("PAIR{p:02}-{i}"),
                Some(gi),
                beta,
                Some(&path),
                vol / 12.0,
                rng,
            ));
        }
    }
    for o in 0..spec.num_outliers {
        let vol = 0.004 + rng.random::<f64>() * 0.010;
        let beta = rng.random::<f64>() * 1.2;
        funds.push(make_fund(format!("OUT-{o:03}"), None, beta, None, vol, rng));
    }

    // Shuffle funds.
    for i in (1..funds.len()).rev() {
        let j = rng.random_range(0..=i);
        funds.swap(i, j);
    }
    let records = funds
        .iter()
        .map(|f| prices_to_record(&f.prices, spec.no_band))
        .collect();
    FundData {
        funds,
        records,
        schema,
        group_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rock_core::similarity::{CategoricalJaccard, MissingPolicy, Similarity};

    #[test]
    fn paper_spec_counts() {
        let spec = FundSpec::paper();
        assert_eq!(spec.total_funds(), 795);
        assert_eq!(spec.days, 548);
        assert_eq!(spec.groups.len(), 16);
        // Table 4's named groups hold 304 funds.
        assert_eq!(spec.groups.iter().map(|g| g.size).sum::<usize>(), 304);
    }

    #[test]
    fn records_have_one_attribute_per_day() {
        let spec = FundSpec::paper_scaled(0.05);
        let mut rng = StdRng::seed_from_u64(93);
        let data = generate_funds(&spec, &mut rng);
        for r in &data.records {
            assert_eq!(r.arity(), spec.days);
        }
    }

    #[test]
    fn young_funds_have_missing_prefix() {
        let spec = FundSpec::paper_scaled(0.1);
        let mut rng = StdRng::seed_from_u64(94);
        let data = generate_funds(&spec, &mut rng);
        let with_missing = data
            .records
            .iter()
            .filter(|r| r.num_present() < r.arity())
            .count();
        assert!(with_missing > 0, "some funds must be young");
        // Missing values form a prefix: present after first present.
        for r in &data.records {
            let first = r.values().iter().position(|v| v.is_some());
            if let Some(first) = first {
                assert!(r.values()[first..].iter().all(|v| v.is_some()));
            }
        }
    }

    #[test]
    fn same_group_more_similar_than_cross_group() {
        let spec = FundSpec::paper_scaled(0.15);
        let mut rng = StdRng::seed_from_u64(95);
        let data = generate_funds(&spec, &mut rng);
        let sim = CategoricalJaccard::new(MissingPolicy::CommonAttributes);
        // Average within- vs cross-group similarity over the named groups.
        let named = spec.groups.len();
        let mut within = (0.0, 0usize);
        let mut cross = (0.0, 0usize);
        for i in 0..data.funds.len() {
            for j in (i + 1)..data.funds.len() {
                let (gi, gj) = (data.funds[i].group, data.funds[j].group);
                let (Some(gi), Some(gj)) = (gi, gj) else { continue };
                if gi >= named || gj >= named {
                    continue;
                }
                let s = sim.similarity(&data.records[i], &data.records[j]);
                if gi == gj {
                    within.0 += s;
                    within.1 += 1;
                } else {
                    cross.0 += s;
                    cross.1 += 1;
                }
            }
        }
        let w = within.0 / within.1 as f64;
        let c = cross.0 / cross.1 as f64;
        assert!(
            w > 0.8,
            "within-group mean similarity {w} (cross {c})"
        );
        assert!(w > c + 0.2, "within {w} vs cross {c}");
    }

    #[test]
    fn discretisation_boundaries() {
        let prices = vec![Some(100.0), Some(100.05), Some(100.05), Some(99.0), None];
        let r = prices_to_record(&prices, 0.0008);
        assert_eq!(r.values().len(), 4);
        assert_eq!(r.value(0), Some(change::NO)); // +0.05% inside band
        assert_eq!(r.value(1), Some(change::NO)); // exactly zero
        assert_eq!(r.value(2), Some(change::DOWN));
        assert_eq!(r.value(3), None);
    }

    #[test]
    fn deterministic_for_seed() {
        let spec = FundSpec::paper_scaled(0.05);
        let a = generate_funds(&spec, &mut StdRng::seed_from_u64(1));
        let b = generate_funds(&spec, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.records, b.records);
        assert_eq!(
            a.funds.iter().map(|f| &f.ticker).collect::<Vec<_>>(),
            b.funds.iter().map(|f| &f.ticker).collect::<Vec<_>>()
        );
    }
}

//! Reading and writing market-basket files — the "database on disk" the
//! paper's Fig.-2 pipeline samples from and labels.
//!
//! Format: one transaction per line, whitespace- or comma-separated item
//! tokens. Tokens may be arbitrary strings (interned through an
//! [`ItemCatalog`]) or raw non-negative integers (parsed directly with
//! [`read_baskets_numeric`]). Empty lines and `#` comments are skipped.
//!
//! [`stream_baskets`] wraps any `BufRead` into a lazy transaction
//! iterator so the reservoir samplers
//! ([`rock_core::sampling::reservoir_sample_x`]) can draw a sample
//! without materialising the database in memory.

use rock_core::points::{ItemCatalog, Transaction};
use std::io::{self, BufRead, Write};

/// Splits a basket line into item tokens (commas or whitespace).
pub(crate) fn tokens(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| c == ',' || c.is_whitespace())
        .map(str::trim)
        .filter(|t| !t.is_empty())
}

/// Annotates an I/O error with the 1-based line it occurred on,
/// preserving its kind so callers can still classify it.
fn annotate_line(lineno: usize, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("line {lineno}: {e}"))
}

/// Reads transactions with arbitrary string items, interning through
/// `catalog`.
///
/// I/O errors (including invalid UTF-8, surfaced by `lines()` as
/// `InvalidData`) name the offending line, matching
/// [`read_baskets_numeric`]'s error style.
pub fn read_baskets<R: BufRead>(
    reader: R,
    catalog: &mut ItemCatalog,
) -> io::Result<Vec<Transaction>> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| annotate_line(lineno + 1, e))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(tokens(line).map(|t| catalog.intern(t)).collect());
    }
    Ok(out)
}

/// Reads transactions whose items are non-negative integers.
///
/// Returns an `InvalidData` error naming the offending line and token;
/// I/O errors are likewise annotated with their line number.
pub fn read_baskets_numeric<R: BufRead>(reader: R) -> io::Result<Vec<Transaction>> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| annotate_line(lineno + 1, e))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut items = Vec::new();
        for t in tokens(line) {
            let item: u32 = t.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad item token {t:?}", lineno + 1),
                )
            })?;
            items.push(item);
        }
        out.push(Transaction::new(items));
    }
    Ok(out)
}

/// Lazily streams numeric transactions from a reader; parse errors end
/// the stream as an `Err` item.
pub fn stream_baskets<R: BufRead>(
    reader: R,
) -> impl Iterator<Item = io::Result<Transaction>> {
    reader
        .lines()
        .enumerate()
        .filter_map(|(lineno, line)| match line {
            Err(e) => Some(Err(annotate_line(lineno + 1, e))),
            Ok(line) => {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    return None;
                }
                let mut items = Vec::new();
                for t in tokens(line) {
                    match t.parse::<u32>() {
                        Ok(item) => items.push(item),
                        Err(_) => {
                            return Some(Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("line {}: bad item token {t:?}", lineno + 1),
                            )))
                        }
                    }
                }
                Some(Ok(Transaction::new(items)))
            }
        })
}

/// Writes transactions as space-separated numeric item lines.
pub fn write_baskets<W: Write>(writer: &mut W, transactions: &[Transaction]) -> io::Result<()> {
    for t in transactions {
        let mut first = true;
        for &item in t.items() {
            if !first {
                write!(writer, " ")?;
            }
            write!(writer, "{item}")?;
            first = false;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::io::BufReader;

    #[test]
    fn string_items_roundtrip_through_catalog() {
        let input = "milk, diapers, toys\n# comment\n\nwine cheese\n";
        let mut catalog = ItemCatalog::new();
        let ts = read_baskets(BufReader::new(input.as_bytes()), &mut catalog).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].len(), 3);
        assert!(ts[0].contains(catalog.get("diapers").unwrap()));
        assert!(ts[1].contains(catalog.get("cheese").unwrap()));
    }

    #[test]
    fn numeric_roundtrip() {
        let original = vec![
            Transaction::from([3, 1, 2]),
            Transaction::from([7]),
            Transaction::from([10, 20, 30]),
        ];
        let mut buf = Vec::new();
        write_baskets(&mut buf, &original).unwrap();
        let read = read_baskets_numeric(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(read, original);
    }

    #[test]
    fn numeric_rejects_garbage() {
        let err = read_baskets_numeric(BufReader::new("1 2 x".as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn io_errors_name_the_offending_line() {
        // Invalid UTF-8 on line 2 surfaces as InvalidData from lines();
        // every reader must keep the kind and add the line number.
        let bytes: &[u8] = b"1 2 3\n\xFF\xFE\n4 5\n";

        let err = read_baskets_numeric(BufReader::new(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "got: {err}");

        let mut catalog = ItemCatalog::new();
        let err = read_baskets(BufReader::new(bytes), &mut catalog).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "got: {err}");

        let items: Vec<io::Result<Transaction>> =
            stream_baskets(BufReader::new(bytes)).collect();
        let err = items[1].as_ref().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "got: {err}");
    }

    #[test]
    fn streaming_supports_reservoir_sampling() {
        // A "disk-resident" database sampled without materialising it.
        let mut buf = Vec::new();
        let db: Vec<Transaction> = (0..500u32)
            .map(|i| Transaction::from([i, i + 1, i + 2]))
            .collect();
        write_baskets(&mut buf, &db).unwrap();
        let stream = stream_baskets(BufReader::new(buf.as_slice())).map(Result::unwrap);
        let mut rng = StdRng::seed_from_u64(17);
        let sample = rock_core::sampling::reservoir_sample_x(stream, 50, &mut rng);
        assert_eq!(sample.len(), 50);
        let mut uniq = sample.clone();
        uniq.sort_by_key(|t| t.items()[0]);
        uniq.dedup();
        assert_eq!(uniq.len(), 50);
    }

    #[test]
    fn stream_reports_parse_error() {
        let items: Vec<io::Result<Transaction>> =
            stream_baskets(BufReader::new("1 2\nbad\n3".as_bytes())).collect();
        assert_eq!(items.len(), 3);
        assert!(items[0].is_ok());
        assert!(items[1].is_err());
    }
}

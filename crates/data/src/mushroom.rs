//! The mushroom data set (§5.1, Tables 1, 3, 8–9).
//!
//! The paper uses the UCI Agaricus/Lepiota data: 8,124 records, 22
//! categorical attributes, 4,208 edible / 3,916 poisonous. Two paths:
//!
//! * [`generate_mushrooms`] — a **species-template generator** patterned
//!   on the paper's findings: the data decomposes into ~22 species-like
//!   blocks with strongly non-uniform sizes (8…1728); within a block
//!   records differ on only a few attributes; different blocks share many
//!   attribute values (clusters are *not* well-separated, Tables 8–9);
//!   and the `odor` attribute perfectly separates edible (none / anise /
//!   almond) from poisonous (foul / fishy / spicy) mushrooms. The block
//!   sizes default to the exact pure-cluster sizes ROCK found (Table 3).
//! * [`parse_mushrooms`] — a parser for the original UCI
//!   `agaricus-lepiota.data` letter-coded format, so the real file can be
//!   dropped in.

use rand::Rng;
use rock_core::points::{CategoricalRecord, CategoricalSchema};

/// Edibility label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Edibility {
    /// Edible mushroom.
    Edible,
    /// Poisonous mushroom.
    Poisonous,
}

/// The 22 UCI attributes: `(name, [(letter code, value name), …])`.
const ATTRIBUTES: [(&str, &[(&str, &str)]); 22] = [
    ("cap-shape", &[("b", "bell"), ("c", "conical"), ("x", "convex"), ("f", "flat"), ("k", "knobbed"), ("s", "sunken")]),
    ("cap-surface", &[("f", "fibrous"), ("g", "grooves"), ("y", "scaly"), ("s", "smooth")]),
    ("cap-color", &[("n", "brown"), ("b", "buff"), ("c", "cinnamon"), ("g", "gray"), ("r", "green"), ("p", "pink"), ("u", "purple"), ("e", "red"), ("w", "white"), ("y", "yellow")]),
    ("bruises", &[("t", "bruises"), ("f", "no")]),
    ("odor", &[("a", "almond"), ("l", "anise"), ("c", "creosote"), ("y", "fishy"), ("f", "foul"), ("m", "musty"), ("n", "none"), ("p", "pungent"), ("s", "spicy")]),
    ("gill-attachment", &[("a", "attached"), ("d", "descending"), ("f", "free"), ("n", "notched")]),
    ("gill-spacing", &[("c", "close"), ("w", "crowded"), ("d", "distant")]),
    ("gill-size", &[("b", "broad"), ("n", "narrow")]),
    ("gill-color", &[("k", "black"), ("n", "brown"), ("b", "buff"), ("h", "chocolate"), ("g", "gray"), ("r", "green"), ("o", "orange"), ("p", "pink"), ("u", "purple"), ("e", "red"), ("w", "white"), ("y", "yellow")]),
    ("stalk-shape", &[("e", "enlarging"), ("t", "tapering")]),
    ("stalk-root", &[("b", "bulbous"), ("c", "club"), ("u", "cup"), ("e", "equal"), ("z", "rhizomorphs"), ("r", "rooted")]),
    ("stalk-surface-above-ring", &[("f", "fibrous"), ("y", "scaly"), ("k", "silky"), ("s", "smooth")]),
    ("stalk-surface-below-ring", &[("f", "fibrous"), ("y", "scaly"), ("k", "silky"), ("s", "smooth")]),
    ("stalk-color-above-ring", &[("n", "brown"), ("b", "buff"), ("c", "cinnamon"), ("g", "gray"), ("o", "orange"), ("p", "pink"), ("e", "red"), ("w", "white"), ("y", "yellow")]),
    ("stalk-color-below-ring", &[("n", "brown"), ("b", "buff"), ("c", "cinnamon"), ("g", "gray"), ("o", "orange"), ("p", "pink"), ("e", "red"), ("w", "white"), ("y", "yellow")]),
    ("veil-type", &[("p", "partial"), ("u", "universal")]),
    ("veil-color", &[("n", "brown"), ("o", "orange"), ("w", "white"), ("y", "yellow")]),
    ("ring-number", &[("n", "none"), ("o", "one"), ("t", "two")]),
    ("ring-type", &[("c", "cobwebby"), ("e", "evanescent"), ("f", "flaring"), ("l", "large"), ("n", "none"), ("p", "pendant"), ("s", "sheathing"), ("z", "zone")]),
    ("spore-print-color", &[("k", "black"), ("n", "brown"), ("b", "buff"), ("h", "chocolate"), ("r", "green"), ("o", "orange"), ("u", "purple"), ("w", "white"), ("y", "yellow")]),
    ("population", &[("a", "abundant"), ("c", "clustered"), ("n", "numerous"), ("s", "scattered"), ("v", "several"), ("y", "solitary")]),
    ("habitat", &[("g", "grasses"), ("l", "leaves"), ("m", "meadows"), ("p", "paths"), ("u", "urban"), ("w", "waste"), ("d", "woods")]),
];

/// Index of the `odor` attribute.
const ODOR: usize = 4;
/// Index of `veil-type` (constant "partial" in the real data).
const VEIL_TYPE: usize = 15;
/// Odor value ids for edible species: almond (0), anise (1), none (6).
const EDIBLE_ODORS: [u32; 3] = [0, 1, 6];
/// Odor value ids for poisonous species: fishy (3), foul (4), spicy (8)
/// (the three the paper observed in its clusters).
const POISONOUS_ODORS: [u32; 3] = [3, 4, 8];

/// The 22-attribute UCI schema with full value names.
pub fn mushroom_schema() -> CategoricalSchema {
    let mut schema = CategoricalSchema::new();
    for (name, values) in ATTRIBUTES {
        schema.add_attribute(name, values.iter().map(|&(_, v)| v).collect());
    }
    schema
}

/// The pure-cluster sizes ROCK found on the real data (Table 3):
/// `(size, edibility)` per species block. Sums to 4,208 edible +
/// 3,916 poisonous = 8,124.
pub fn paper_species_sizes() -> Vec<(usize, Edibility)> {
    use Edibility::{Edible as E, Poisonous as P};
    vec![
        (96, E), (256, P), (704, E), (96, E), (768, E), (192, P), (1728, E), (32, P),
        (1296, P), (8, P), (48, E), (48, E), (288, P), (192, E), (32, E), (72, P),
        (1728, P), (288, E), (8, P), (192, E), (16, E), (36, P),
    ]
}

/// Specification of a generated mushroom data set.
#[derive(Clone, Debug)]
pub struct MushroomSpec {
    /// `(record count, edibility)` per species block.
    pub species: Vec<(usize, Edibility)>,
    /// Maximum number of attributes that vary *within* a species (the
    /// rest are fixed by the species template). The actual count scales
    /// with block size — `min(varying_attributes, log2(size))` — as
    /// in the real data, where the 1728-record block varies on ~9
    /// attributes (paper Table 8, cluster 3) while the 8-record blocks
    /// are nearly constant. Large-block variation is what smears the
    /// traditional algorithm's centroids (§1.1's "ripple effect").
    pub varying_attributes: usize,
    /// Consecutive species are grouped into *genera* of this size:
    /// sibling species share a base template and differ only in
    /// `mutations_per_species` attributes (plus odor across the
    /// edible/poisonous divide). This is what makes the clusters "not
    /// well-separated" (§5.2) and defeats centroid-based clustering —
    /// lookalike edible and poisonous species sit close in Euclidean
    /// space — while the link structure still separates them.
    pub species_per_genus: usize,
    /// Number of attributes a species mutates away from its genus base.
    /// Sibling species mutate *disjoint* attribute sets, so any two
    /// siblings differ on at least `2 · mutations_per_species`
    /// attributes — beyond the θ = 0.8 neighbor radius, which is what
    /// lets ROCK keep lookalike species apart.
    pub mutations_per_species: usize,
    /// Probability that a poisonous species is *odorless* (odor = none).
    /// The real data has deadly odorless species; without them the odor
    /// attribute alone separates the classes in Euclidean space and the
    /// traditional comparator gets an unrealistically easy ride.
    pub odorless_poisonous_rate: f64,
    /// Per-attribute probability of replacing a value with a uniformly
    /// random one (recording noise).
    pub noise_rate: f64,
    /// Per-value probability of a missing value (paper: "very few").
    pub missing_rate: f64,
}

impl MushroomSpec {
    /// The paper-faithful configuration: Table-3 block sizes, genera of
    /// 4 lookalike species 3 mutations apart, up to 9 size-scaled
    /// varying attributes, 30% odorless poisonous species, 0.2% noise,
    /// 0.3% missing values.
    pub fn paper() -> Self {
        MushroomSpec {
            species: paper_species_sizes(),
            varying_attributes: 12,
            species_per_genus: 4,
            mutations_per_species: 3,
            odorless_poisonous_rate: 0.3,
            noise_rate: 0.002,
            missing_rate: 0.003,
        }
    }

    /// A proportionally scaled-down variant (block sizes multiplied by
    /// `scale`, minimum 2), for tests and quick experiments.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn paper_scaled(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut spec = Self::paper();
        for (s, _) in &mut spec.species {
            *s = ((*s as f64 * scale).round() as usize).max(2);
        }
        spec
    }

    /// Total number of records.
    pub fn total_records(&self) -> usize {
        self.species.iter().map(|&(s, _)| s).sum()
    }
}

/// The generated data set.
#[derive(Clone, Debug)]
pub struct MushroomData {
    /// The records, shuffled.
    pub records: Vec<CategoricalRecord>,
    /// Edibility per record.
    pub labels: Vec<Edibility>,
    /// Ground-truth species block per record.
    pub species: Vec<usize>,
    /// The schema.
    pub schema: CategoricalSchema,
}

/// Generates a mushroom data set from species templates.
///
/// Template construction: every species fixes all but
/// `spec.varying_attributes` attributes. Fixed values are drawn from the
/// first few values of each domain (weighted towards the first two), so
/// different species frequently agree on individual attributes — the
/// paper's "clusters are not well-separated". Odor follows the
/// edible/poisonous split exactly; veil-type is always "partial" as in
/// the real data. Varying attributes take one of 2 template-chosen
/// values per record.
///
/// # Panics
/// Panics if `varying_attributes ≥ 21` or `missing_rate ∉ [0, 1)`.
pub fn generate_mushrooms<R: Rng + ?Sized>(spec: &MushroomSpec, rng: &mut R) -> MushroomData {
    assert!(
        spec.varying_attributes < 21,
        "too many varying attributes ({})",
        spec.varying_attributes
    );
    assert!(
        (0.0..1.0).contains(&spec.missing_rate),
        "missing rate must be in [0, 1)"
    );
    let schema = mushroom_schema();
    let num_attrs = schema.num_attributes();

    struct Template {
        /// Allowed value ids per attribute (singleton = fixed).
        allowed: Vec<Vec<u32>>,
        edibility: Edibility,
    }

    // Genus base templates: consecutive runs of `species_per_genus`
    // species share one base, so sibling species are lookalikes.
    let genus_of = |si: usize| si / spec.species_per_genus.max(1);
    let num_genera = genus_of(spec.species.len().saturating_sub(1)) + 1;
    let mut genus_bases: Vec<Vec<u32>> = Vec::with_capacity(num_genera);
    for _ in 0..num_genera {
        let base: Vec<u32> = schema
            .attributes()
            .iter()
            .enumerate()
            .map(|(a, attr)| {
                let domain = attr.domain_size() as u32;
                if a == VEIL_TYPE {
                    return 0; // "partial", as in the real data
                }
                // Weighted towards the low-id values so even different
                // genera overlap on individual attributes: ~45% value 0,
                // ~30% value 1, the rest spread over the domain.
                let r: f64 = rng.random();
                if r < 0.45 || domain == 1 {
                    0
                } else if r < 0.75 || domain == 2 {
                    1.min(domain - 1)
                } else {
                    rng.random_range(0..domain)
                }
            })
            .collect();
        genus_bases.push(base);
    }

    // Per genus: a *mutation pool* of attributes with domains large
    // enough that every sibling can take a distinct value (pairwise
    // Hamming distance between sibling templates = mutations_per_species
    // exactly), and a *varying pool* shared by all siblings — the same
    // {base, alt} choice per attribute, so within-species and
    // cross-sibling records look alike on those attributes. Net effect:
    // sibling species are close in Euclidean space (the traditional
    // algorithm confuses them) but always ≥ mutations_per_species
    // attributes apart (outside the θ = 0.8 neighbor radius, so ROCK
    // separates them).
    struct GenusPlan {
        /// (attribute, per-sibling distinct values).
        mutation_pool: Vec<(usize, Vec<u32>)>,
        /// (attribute, the two allowed values).
        varying_pool: Vec<(usize, [u32; 2])>,
    }
    let siblings = spec.species_per_genus.max(1);
    let mut plans: Vec<GenusPlan> = Vec::with_capacity(num_genera);
    for base in &genus_bases {
        let mut order: Vec<usize> = (0..num_attrs)
            .filter(|&a| a != ODOR && a != VEIL_TYPE)
            .collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let mut mutation_pool = Vec::with_capacity(spec.mutations_per_species);
        let mut varying_pool = Vec::with_capacity(spec.varying_attributes);
        for &a in &order {
            let domain = schema.attributes()[a].domain_size() as u32;
            if mutation_pool.len() < spec.mutations_per_species
                && domain as usize > siblings
            {
                // Distinct value per sibling, all different from base:
                // base+offset+k for k in 0..siblings with
                // 1 ≤ offset ≤ domain−siblings never wraps onto base.
                let offset = rng.random_range(1..=(domain - siblings as u32));
                let values = (0..siblings as u32)
                    .map(|k| (base[a] + offset + k) % domain)
                    .collect();
                mutation_pool.push((a, values));
            } else if varying_pool.len() < spec.varying_attributes && domain >= 2 {
                let mut alt = rng.random_range(0..domain);
                if alt == base[a] {
                    alt = (alt + 1) % domain;
                }
                varying_pool.push((a, [base[a], alt]));
            }
            if mutation_pool.len() == spec.mutations_per_species
                && varying_pool.len() == spec.varying_attributes
            {
                break;
            }
        }
        plans.push(GenusPlan {
            mutation_pool,
            varying_pool,
        });
    }

    let mut templates: Vec<Template> = Vec::with_capacity(spec.species.len());
    for (si, &(_, edibility)) in spec.species.iter().enumerate() {
        let genus = genus_of(si);
        let plan = &plans[genus];
        let sib = si % siblings;
        let mut allowed: Vec<Vec<u32>> = genus_bases[genus]
            .iter()
            .map(|&v| vec![v])
            .collect();
        // Odor tracks edibility (the paper's observed rule), except for
        // the occasional odorless poisonous species.
        let odor = match edibility {
            Edibility::Edible => EDIBLE_ODORS[rng.random_range(0..EDIBLE_ODORS.len())],
            Edibility::Poisonous => {
                if rng.random::<f64>() < spec.odorless_poisonous_rate {
                    6 // "none"
                } else {
                    POISONOUS_ODORS[rng.random_range(0..POISONOUS_ODORS.len())]
                }
            }
        };
        allowed[ODOR] = vec![odor];
        for (a, values) in &plan.mutation_pool {
            allowed[*a] = vec![values[sib]];
        }
        // Size-scaled variation over the genus-shared varying pool.
        let size = spec.species[si].0;
        let v = (size.max(2).ilog2() as usize).clamp(1, plan.varying_pool.len());
        for (a, values) in plan.varying_pool.iter().take(v) {
            allowed[*a] = values.to_vec();
        }
        templates.push(Template { allowed, edibility });
    }

    let total = spec.total_records();
    let mut records = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    let mut species_of = Vec::with_capacity(total);
    for (si, &(count, _)) in spec.species.iter().enumerate() {
        let t = &templates[si];
        for _ in 0..count {
            let values: Vec<Option<u32>> = t
                .allowed
                .iter()
                .enumerate()
                .map(|(a, choices)| {
                    if rng.random::<f64>() < spec.missing_rate {
                        return None;
                    }
                    if a != ODOR && rng.random::<f64>() < spec.noise_rate {
                        let domain = schema.attributes()[a].domain_size() as u32;
                        return Some(rng.random_range(0..domain));
                    }
                    if choices.len() == 1 {
                        Some(choices[0])
                    } else {
                        Some(choices[rng.random_range(0..choices.len())])
                    }
                })
                .collect();
            records.push(CategoricalRecord::new(values));
            labels.push(t.edibility);
            species_of.push(si);
        }
    }

    // Shuffle everything together.
    for i in (1..records.len()).rev() {
        let j = rng.random_range(0..=i);
        records.swap(i, j);
        labels.swap(i, j);
        species_of.swap(i, j);
    }

    MushroomData {
        records,
        labels,
        species: species_of,
        schema,
    }
}

/// Parses the UCI `agaricus-lepiota.data` format: one record per line,
/// `label,a1,...,a22` with single-letter codes, `?` for missing
/// (stalk-root).
pub fn parse_mushrooms(content: &str) -> Result<MushroomData, String> {
    let schema = mushroom_schema();
    let mut records = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 23 {
            return Err(format!(
                "line {}: expected 23 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let label = match fields[0] {
            "e" => Edibility::Edible,
            "p" => Edibility::Poisonous,
            other => return Err(format!("line {}: unknown label {other:?}", lineno + 1)),
        };
        let mut values = Vec::with_capacity(22);
        for (a, &code) in fields[1..].iter().enumerate() {
            if code == "?" {
                values.push(None);
                continue;
            }
            let v = ATTRIBUTES[a]
                .1
                .iter()
                .position(|&(c, _)| c == code)
                .ok_or_else(|| {
                    format!(
                        "line {}: unknown code {code:?} for attribute {:?}",
                        lineno + 1,
                        ATTRIBUTES[a].0
                    )
                })?;
            values.push(Some(v as u32));
        }
        records.push(CategoricalRecord::new(values));
        labels.push(label);
    }
    let species = vec![0; records.len()]; // unknown for real data
    Ok(MushroomData {
        records,
        labels,
        species,
        schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use rock_core::similarity::{CategoricalJaccard, Similarity};

    #[test]
    fn paper_sizes_sum_to_table1() {
        let spec = MushroomSpec::paper();
        assert_eq!(spec.total_records(), 8124);
        let edible: usize = spec
            .species
            .iter()
            .filter(|(_, e)| *e == Edibility::Edible)
            .map(|&(s, _)| s)
            .sum();
        assert_eq!(edible, 4208);
        assert_eq!(spec.total_records() - edible, 3916);
    }

    #[test]
    fn odor_separates_edibility() {
        let mut rng = StdRng::seed_from_u64(22);
        let data = generate_mushrooms(&MushroomSpec::paper_scaled(0.02), &mut rng);
        for (r, l) in data.records.iter().zip(&data.labels) {
            if let Some(odor) = r.value(ODOR) {
                match l {
                    Edibility::Edible => assert!(EDIBLE_ODORS.contains(&odor)),
                    // Poisonous species are foul/fishy/spicy or odorless.
                    Edibility::Poisonous => {
                        assert!(POISONOUS_ODORS.contains(&odor) || odor == 6)
                    }
                }
            }
        }
    }

    #[test]
    fn within_species_neighbor_structure() {
        // The real data's species blocks are cross-products: not every
        // within-species pair is a θ = 0.8 neighbor, but a sizable
        // fraction is, and within-species similarity dominates
        // cross-species similarity.
        let mut rng = StdRng::seed_from_u64(5);
        let data = generate_mushrooms(&MushroomSpec::paper_scaled(0.02), &mut rng);
        let sim = CategoricalJaccard::default();
        let mut within = (0.0f64, 0usize, 0usize); // (sum, count, neighbors)
        let mut cross = (0.0f64, 0usize);
        for i in 0..data.records.len() {
            for j in (i + 1)..data.records.len() {
                let s = sim.similarity(&data.records[i], &data.records[j]);
                if data.species[i] == data.species[j] {
                    within.0 += s;
                    within.1 += 1;
                    if s >= 0.8 {
                        within.2 += 1;
                    }
                } else {
                    cross.0 += s;
                    cross.1 += 1;
                }
            }
        }
        let avg_within = within.0 / within.1 as f64;
        let avg_cross = cross.0 / cross.1 as f64;
        assert!(
            avg_within > avg_cross + 0.15,
            "within {avg_within} vs cross {avg_cross}"
        );
        let neighbor_frac = within.2 as f64 / within.1 as f64;
        assert!(
            neighbor_frac > 0.2,
            "within-species neighbor fraction {neighbor_frac}"
        );
    }

    #[test]
    fn species_share_attribute_values() {
        // Paper: "records in different clusters could be identical with
        // respect to some attribute values" — templates must overlap.
        let mut rng = StdRng::seed_from_u64(6);
        let data = generate_mushrooms(&MushroomSpec::paper_scaled(0.01), &mut rng);
        let (a, b) = (0usize, 1usize);
        let ra = data
            .records
            .iter()
            .zip(&data.species)
            .find(|(_, s)| **s == a)
            .unwrap()
            .0;
        let rb = data
            .records
            .iter()
            .zip(&data.species)
            .find(|(_, s)| **s == b)
            .unwrap()
            .0;
        let matches = ra
            .values()
            .iter()
            .zip(rb.values())
            .filter(|(x, y)| x.is_some() && x == y)
            .count();
        assert!(matches >= 3, "different species share only {matches} values");
    }

    #[test]
    fn parse_uci_line() {
        let content = "p,x,s,n,t,p,f,c,n,k,e,e,s,s,w,w,p,w,o,p,k,s,u\n\
                       e,x,s,y,t,a,f,c,b,k,e,c,s,s,w,w,p,w,o,p,n,n,g\n\
                       e,x,y,w,t,?,f,c,b,n,t,b,s,s,w,w,p,w,o,p,n,a,g";
        let data = parse_mushrooms(content).unwrap();
        assert_eq!(data.records.len(), 3);
        assert_eq!(data.labels[0], Edibility::Poisonous);
        assert_eq!(data.labels[1], Edibility::Edible);
        // odor of line 1 is 'p' = pungent (id 7).
        assert_eq!(data.records[0].value(ODOR), Some(7));
        assert_eq!(data.records[2].value(ODOR), None);
    }

    #[test]
    fn parse_rejects_bad_code() {
        let content = "e,Z,s,y,t,a,f,c,b,k,e,c,s,s,w,w,p,w,o,p,n,n,g";
        assert!(parse_mushrooms(content).is_err());
    }

    #[test]
    fn schema_has_22_attributes() {
        let s = mushroom_schema();
        assert_eq!(s.num_attributes(), 22);
        assert_eq!(s.attributes()[ODOR].name(), "odor");
        assert_eq!(s.attributes()[VEIL_TYPE].name(), "veil-type");
    }
}

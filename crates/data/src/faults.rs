//! Deterministic I/O fault injection — the data half of the workspace's
//! fault harness (the similarity half is
//! [`rock_core::similarity::FaultySimilarity`]).
//!
//! Real basket databases fail in three characteristic ways: reads fail
//! *transiently* (network filesystems, flaky disks), lines arrive
//! *truncated* (torn writes, partial transfers), and tokens arrive as
//! *garbage* (encoding damage, foreign rows). [`FaultyReader`] injects the
//! first from a seeded schedule at the `Read` layer; [`corrupt_baskets`]
//! applies the other two to the data image itself. Every fault is a pure
//! function of `(seed, position)`, so a schedule reproduces exactly across
//! runs and across checkpoint resumptions — which is what lets the
//! resilience tests assert bit-identical resumed output.

use rock_core::util::seeded_hit;
use rock_core::{Phase, RunGovernor};
use std::io::{self, Read};
use std::time::Duration;

/// Stream ids separating the independent fault schedules drawn from one
/// seed.
const STREAM_TRANSIENT: u64 = 0x10;
const STREAM_GARBAGE: u64 = 0x20;
const STREAM_TRUNCATE: u64 = 0x30;
const STREAM_ARTIFACT: u64 = 0x40;

/// A garbage token no numeric basket parser accepts.
pub const GARBAGE_TOKEN: &str = "x7!";

/// A seeded schedule of injected faults.
///
/// All rates are independent per-event Bernoulli probabilities, decided
/// deterministically from the seed (see
/// [`rock_core::util::seeded_hit`]). The zero-rate spec injects nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Seed for every schedule stream.
    pub seed: u64,
    /// Probability that a `read()` call site starts a transient-error
    /// burst.
    pub transient_rate: f64,
    /// Consecutive transient errors per burst (1 = a single retry
    /// recovers; set above the retry budget to force a hard failure).
    pub transient_burst: u32,
    /// Probability that a data line gains a garbage token
    /// ([`GARBAGE_TOKEN`]).
    pub garbage_rate: f64,
    /// Probability that a data line is truncated.
    pub truncate_rate: f64,
    /// Maximum bytes delivered per successful `read()` (0 = unlimited).
    /// A small chunk models a slow device and — because `BufReader`
    /// otherwise swallows a whole test input in one call — gives the
    /// transient schedule enough call sites to fire on.
    pub chunk: usize,
}

impl FaultSpec {
    /// A schedule that injects nothing.
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            seed,
            transient_rate: 0.0,
            transient_burst: 1,
            garbage_rate: 0.0,
            truncate_rate: 0.0,
            chunk: 0,
        }
    }

    /// Sets the transient-error rate.
    pub fn transient(mut self, rate: f64, burst: u32) -> Self {
        self.transient_rate = rate;
        self.transient_burst = burst.max(1);
        self
    }

    /// Sets the garbage-token rate.
    pub fn garbage(mut self, rate: f64) -> Self {
        self.garbage_rate = rate;
        self
    }

    /// Sets the line-truncation rate.
    pub fn truncate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate;
        self
    }

    /// Caps bytes delivered per successful `read()` (0 = unlimited).
    pub fn chunk(mut self, bytes: usize) -> Self {
        self.chunk = bytes;
        self
    }
}

/// Wraps a reader and injects transient `io::Error`s on a seeded schedule
/// of `read()` call indices.
///
/// A scheduled call index starts a *burst* of
/// [`FaultSpec::transient_burst`] consecutive failures; once the burst is
/// exhausted the retried call reaches the inner reader, so a retry loop
/// with budget ≥ burst always recovers and the byte stream delivered is
/// unchanged. Injected errors alternate between
/// [`io::ErrorKind::WouldBlock`] and [`io::ErrorKind::TimedOut`] — kinds
/// the resilient drivers classify as transient. (`Interrupted` is
/// deliberately not injected: `BufRead::read_line` retries it internally,
/// which would hide the fault from the layer under test.)
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    spec: FaultSpec,
    calls: u64,
    pending_burst: u32,
    injected: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` under `spec`.
    pub fn new(inner: R, spec: FaultSpec) -> Self {
        FaultyReader {
            inner,
            spec,
            calls: 0,
            pending_burst: 0,
            injected: 0,
        }
    }

    /// Number of transient errors injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }

    fn transient_error(&self) -> io::Error {
        let kind = if self.injected.is_multiple_of(2) {
            io::ErrorKind::WouldBlock
        } else {
            io::ErrorKind::TimedOut
        };
        io::Error::new(kind, format!("injected transient fault #{}", self.injected))
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pending_burst > 0 {
            self.pending_burst -= 1;
            let e = self.transient_error();
            self.injected += 1;
            return Err(e);
        }
        let i = self.calls;
        self.calls += 1;
        if self.spec.transient_rate > 0.0
            && seeded_hit(self.spec.seed, STREAM_TRANSIENT, i, self.spec.transient_rate)
        {
            self.pending_burst = self.spec.transient_burst.saturating_sub(1);
            let e = self.transient_error();
            self.injected += 1;
            return Err(e);
        }
        let cap = match self.spec.chunk {
            0 => buf.len(),
            c => buf.len().min(c),
        };
        self.inner.read(&mut buf[..cap])
    }
}

/// Deterministically corrupts a basket-file image: per the schedule, data
/// lines gain a [`GARBAGE_TOKEN`] or lose their tail.
///
/// Blank and `#`-comment lines are left alone (they are skipped by every
/// reader anyway, so corrupting them would test nothing). Corruption is
/// applied to the *image*, before any reader sees it, so an uninterrupted
/// run and a checkpoint-resumed run observe the same bytes.
pub fn corrupt_baskets(input: &str, spec: &FaultSpec) -> String {
    let mut out = String::with_capacity(input.len() + 16);
    for (lineno, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let i = lineno as u64;
        if seeded_hit(spec.seed, STREAM_GARBAGE, i, spec.garbage_rate) {
            out.push_str(line);
            out.push(' ');
            out.push_str(GARBAGE_TOKEN);
        } else if seeded_hit(spec.seed, STREAM_TRUNCATE, i, spec.truncate_rate) && !line.is_empty()
        {
            // Cut somewhere strictly inside the line so something is lost.
            let mut cut = 1 + (seeded_hit_index(spec.seed, i) as usize % line.len().max(1));
            cut = cut.min(line.len().saturating_sub(1)).max(1);
            while cut > 0 && !line.is_char_boundary(cut) {
                cut -= 1;
            }
            out.push_str(&line[..cut]);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// A deterministic index helper for picking truncation points.
fn seeded_hit_index(seed: u64, line: u64) -> u64 {
    rock_core::util::splitmix64(seed ^ STREAM_TRUNCATE ^ line.wrapping_mul(0x9E37_79B9))
}

/// Flips exactly one seeded bit of an artifact image — the single-bit
/// damage injector for the artifact corruption matrix. Pure function of
/// `(seed, image length)`; returns the image unchanged only when empty.
pub fn flip_artifact_bit(bytes: &[u8], seed: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    let r = rock_core::util::splitmix64(seed ^ STREAM_ARTIFACT);
    let offset = (r as usize) % out.len();
    let bit = ((r >> 32) % 8) as u32;
    out[offset] ^= 1u8 << bit;
    out
}

/// Truncates an artifact image at a seeded offset strictly inside it
/// (torn write / partial transfer). Pure function of
/// `(seed, image length)`.
pub fn truncate_artifact(bytes: &[u8], seed: u64) -> Vec<u8> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let r = rock_core::util::splitmix64(seed ^ STREAM_ARTIFACT.rotate_left(8));
    let cut = (r as usize) % bytes.len();
    bytes[..cut].to_vec()
}

/// An [`ArtifactSource`](rock_core::artifact::ArtifactSource) serving a
/// fixed image through the seeded transient-error schedule of a
/// [`FaultSpec`] — the injector behind the serve layer's
/// retry-with-backoff tests. Fetch call indices play the role read call
/// indices play for [`FaultyReader`]; a scheduled index starts a burst
/// of [`FaultSpec::transient_burst`] consecutive failures, so a retry
/// budget ≥ burst always recovers the exact image.
#[derive(Clone, Debug)]
pub struct FaultyArtifactSource {
    bytes: Vec<u8>,
    spec: FaultSpec,
    calls: u64,
    pending_burst: u32,
    injected: u64,
}

impl FaultyArtifactSource {
    /// Serves `bytes` under `spec`'s transient schedule.
    pub fn new(bytes: Vec<u8>, spec: FaultSpec) -> Self {
        FaultyArtifactSource {
            bytes,
            spec,
            calls: 0,
            pending_burst: 0,
            injected: 0,
        }
    }

    /// Number of transient errors injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    fn transient_error(&self) -> io::Error {
        let kind = if self.injected.is_multiple_of(2) {
            io::ErrorKind::WouldBlock
        } else {
            io::ErrorKind::TimedOut
        };
        io::Error::new(kind, format!("injected transient fault #{}", self.injected))
    }
}

impl rock_core::artifact::ArtifactSource for FaultyArtifactSource {
    fn fetch(&mut self) -> io::Result<Vec<u8>> {
        if self.pending_burst > 0 {
            self.pending_burst -= 1;
            let e = self.transient_error();
            self.injected += 1;
            return Err(e);
        }
        let i = self.calls;
        self.calls += 1;
        if self.spec.transient_rate > 0.0
            && seeded_hit(self.spec.seed, STREAM_TRANSIENT, i, self.spec.transient_rate)
        {
            self.pending_burst = self.spec.transient_burst.saturating_sub(1);
            let e = self.transient_error();
            self.injected += 1;
            return Err(e);
        }
        Ok(self.bytes.clone())
    }
}

/// A governor that simulates a kill signal after exactly `k` merge
/// decisions — the injector driving the kill-at-merge-k crash/resume
/// matrix. Deterministic: no OS signals, no timing races.
pub fn kill_at_merge(k: u64) -> RunGovernor {
    RunGovernor::unlimited().with_kill_at(Phase::Merge, k)
}

/// A governor that simulates a kill signal at checkpoint `index` of an
/// arbitrary `phase` (e.g. a labeling batch).
pub fn kill_at(phase: Phase, index: u64) -> RunGovernor {
    RunGovernor::unlimited().with_kill_at(phase, index)
}

/// A governor whose charged-memory budget trips at the first tracked
/// allocation — the deterministic budget-trip injector for exercising
/// degradation policies.
pub fn memory_budget_trip() -> RunGovernor {
    RunGovernor::unlimited().with_memory_budget(1)
}

/// A governor whose wall-clock deadline has already passed when the run
/// starts: the very first checkpoint trips.
pub fn deadline_trip() -> RunGovernor {
    RunGovernor::unlimited().with_time_budget(Duration::ZERO)
}

/// A deterministic chaos schedule for the shard supervisor — the
/// workspace's [`ShardFaultPlan`](rock_core::ShardFaultPlan)
/// implementation.
///
/// Each entry targets one `(shard, attempt)` cell of the retry matrix
/// (attempts are 0-based; the coarse merge pass is addressed by the
/// sentinel shard index `shard count`):
///
/// * **crash** — the attempt's governor kills the run after exactly `k`
///   merge decisions, like a process death mid-merge;
/// * **hang** — the attempt's wall-clock budget is already expired, so
///   its first checkpoint trips, like a shard stuck past its deadline;
/// * **memory trip** — a 1-byte memory budget trips on the first charge;
/// * **torn WAL** — the shard WAL carried out of the attempt is
///   truncated to `keep` bytes before the next attempt resumes from it.
///
/// The schedule is plain data: the same schedule replayed against the
/// same input produces bit-identical supervisor behavior, which is what
/// lets the chaos-matrix proptests compare a faulted run against the
/// exclusion oracle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardFaultSchedule {
    /// Crash injections: `(shard, attempt, kill after k merges)`.
    pub crashes: Vec<(usize, u32, u64)>,
    /// Hang injections: `(shard, attempt)`.
    pub hangs: Vec<(usize, u32)>,
    /// Memory-trip injections: `(shard, attempt)`.
    pub memory_trips: Vec<(usize, u32)>,
    /// Torn-WAL injections: `(shard, attempt, bytes kept)`.
    pub torn_wals: Vec<(usize, u32, usize)>,
}

impl ShardFaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        ShardFaultSchedule::default()
    }

    /// Kills attempt `attempt` of shard `shard` after `k` merge
    /// decisions.
    pub fn crash_at_merge(mut self, shard: usize, attempt: u32, k: u64) -> Self {
        self.crashes.push((shard, attempt, k));
        self
    }

    /// Expires attempt `attempt` of shard `shard` at its first
    /// checkpoint (a pre-elapsed deadline).
    pub fn hang(mut self, shard: usize, attempt: u32) -> Self {
        self.hangs.push((shard, attempt));
        self
    }

    /// Trips attempt `attempt` of shard `shard` on its first memory
    /// charge.
    pub fn trip_memory(mut self, shard: usize, attempt: u32) -> Self {
        self.memory_trips.push((shard, attempt));
        self
    }

    /// Tears the WAL carried out of attempt `attempt` of shard `shard`
    /// down to its first `keep` bytes.
    pub fn tear_wal(mut self, shard: usize, attempt: u32, keep: usize) -> Self {
        self.torn_wals.push((shard, attempt, keep));
        self
    }

    /// Shard indices with at least one injection (sorted, deduplicated)
    /// — handy for building the exclusion oracle of a schedule designed
    /// to exhaust every targeted shard's ladder.
    pub fn targeted_shards(&self) -> Vec<usize> {
        let mut shards: Vec<usize> = self
            .crashes
            .iter()
            .map(|&(s, _, _)| s)
            .chain(self.hangs.iter().map(|&(s, _)| s))
            .chain(self.memory_trips.iter().map(|&(s, _)| s))
            .chain(self.torn_wals.iter().map(|&(s, _, _)| s))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

impl rock_core::ShardFaultPlan for ShardFaultSchedule {
    fn governor(&self, shard: usize, attempt: u32, base: RunGovernor) -> RunGovernor {
        // Injection priority when a cell carries several faults:
        // hang, then memory trip, then crash — mirrors which budget the
        // governor's own trip check consults first.
        if self.hangs.contains(&(shard, attempt)) {
            return base.with_time_budget(Duration::ZERO);
        }
        if self.memory_trips.contains(&(shard, attempt)) {
            return base.with_memory_budget(1);
        }
        if let Some(&(_, _, k)) = self
            .crashes
            .iter()
            .find(|&&(s, a, _)| s == shard && a == attempt)
        {
            return base.with_kill_at(Phase::Merge, k);
        }
        base
    }

    fn wal_bytes(&self, shard: usize, attempt: u32, mut bytes: Vec<u8>) -> Vec<u8> {
        if let Some(&(_, _, keep)) = self
            .torn_wals
            .iter()
            .find(|&&(s, a, _)| s == shard && a == attempt)
        {
            bytes.truncate(keep.min(bytes.len()));
        }
        bytes
    }
}

/// A similarity measure poisoned by a marker item: any pair touching a
/// transaction that contains `marker` yields NaN; every other pair is
/// plain Jaccard. Deterministic, so a poisoned shard fails identically
/// on every retry — the input the quarantine ladder's
/// corruption-never-retried rule exists for.
#[derive(Clone, Copy, Debug)]
pub struct PoisonedSimilarity {
    /// The item id whose presence poisons a pair.
    pub marker: u32,
}

impl rock_core::Similarity<rock_core::Transaction> for PoisonedSimilarity {
    fn similarity(&self, a: &rock_core::Transaction, b: &rock_core::Transaction) -> f64 {
        if a.items().contains(&self.marker) || b.items().contains(&self.marker) {
            return f64::NAN;
        }
        rock_core::Jaccard.similarity(a, b)
    }
}

/// Appends `marker` to every transaction in `range`, making that slice
/// poisonous under [`PoisonedSimilarity`]. Out-of-bounds tails of the
/// range are ignored.
pub fn poison_range(data: &mut [rock_core::Transaction], range: std::ops::Range<usize>, marker: u32) {
    for t in data.iter_mut().take(range.end).skip(range.start) {
        let mut items = t.items().to_vec();
        items.push(marker);
        *t = rock_core::Transaction::new(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Cursor};

    #[test]
    fn zero_spec_is_transparent() {
        let data = b"1 2 3\n4 5\n".to_vec();
        let mut r = FaultyReader::new(Cursor::new(data.clone()), FaultSpec::none(9));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(r.injected(), 0);
    }

    #[test]
    fn transient_errors_fire_and_bytes_survive_retries() {
        let data: Vec<u8> = (0..200u32)
            .flat_map(|i| format!("{i} {} {}\n", i + 1, i + 2).into_bytes())
            .collect();
        let spec = FaultSpec::none(7).transient(0.3, 1);
        let mut r = FaultyReader::new(Cursor::new(data.clone()), spec);
        // A retry loop with budget 1 per fault must reassemble the exact
        // byte stream.
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) => {
                    assert!(
                        matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ),
                        "unexpected kind {e:?}"
                    );
                }
            }
        }
        assert_eq!(out, data);
        assert!(r.injected() > 0, "schedule never fired at rate 0.3");
    }

    #[test]
    fn burst_length_is_respected() {
        // Read byte-by-byte and record the length of every consecutive
        // error run: each scheduled call contributes exactly `burst`
        // errors, so runs are always multiples of 3 (adjacent scheduled
        // calls chain into one longer run).
        let spec = FaultSpec::none(1).transient(0.05, 3);
        let data = vec![7u8; 400];
        let mut r = FaultyReader::new(Cursor::new(data.clone()), spec);
        let mut buf = [0u8; 1];
        let mut got = 0usize;
        let mut runs = Vec::new();
        let mut current = 0u32;
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    got += n;
                    if current > 0 {
                        runs.push(current);
                        current = 0;
                    }
                }
                Err(_) => current += 1,
            }
        }
        if current > 0 {
            runs.push(current);
        }
        assert_eq!(got, data.len(), "every payload byte must arrive eventually");
        assert!(!runs.is_empty(), "schedule never fired at rate 0.05");
        assert!(
            runs.iter().all(|&n| n % 3 == 0),
            "bursts must come in multiples of 3: {runs:?}"
        );
    }

    #[test]
    fn unit_rate_never_recovers() {
        // Rate 1.0 schedules every fresh call: the reader is permanently
        // down — the harness's way of forcing a hard failure.
        let spec = FaultSpec::none(2).transient(1.0, 1);
        let mut r = FaultyReader::new(Cursor::new(b"abc".to_vec()), spec);
        let mut buf = [0u8; 4];
        for _ in 0..20 {
            assert!(r.read(&mut buf).is_err());
        }
    }

    #[test]
    fn chunking_limits_read_sizes_without_losing_bytes() {
        let data = b"0123456789abcdef".to_vec();
        let mut r = FaultyReader::new(Cursor::new(data.clone()), FaultSpec::none(4).chunk(3));
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    assert!(n <= 3, "chunk cap violated: {n}");
                    out.extend_from_slice(&buf[..n]);
                }
                Err(e) => panic!("zero-rate spec errored: {e}"),
            }
        }
        assert_eq!(out, data);
    }

    #[test]
    fn corruption_is_deterministic_and_bounded() {
        let clean: String = (0..100).map(|i| format!("{i} {} {}\n", i + 1, i + 2)).collect();
        let spec = FaultSpec::none(13).garbage(0.1).truncate(0.1);
        let a = corrupt_baskets(&clean, &spec);
        let b = corrupt_baskets(&clean, &spec);
        assert_eq!(a, b, "corruption must be a pure function of (seed, image)");
        assert_ne!(a, clean, "rates 0.1 over 100 lines should corrupt something");
        assert!(a.contains(GARBAGE_TOKEN));
        // Clean spec leaves the image untouched.
        assert_eq!(corrupt_baskets(&clean, &FaultSpec::none(13)), clean);
    }

    #[test]
    fn comments_and_blanks_are_never_corrupted() {
        let input = "# header\n\n1 2 3\n";
        let spec = FaultSpec::none(2).garbage(1.0);
        let out = corrupt_baskets(input, &spec);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "# header");
        assert_eq!(lines[1], "");
        assert_eq!(lines[2], format!("1 2 3 {GARBAGE_TOKEN}"));
    }

    #[test]
    fn governor_injectors_trip_deterministically() {
        use rock_core::{RockError, TripReason};
        let g = kill_at_merge(3);
        g.check_at(Phase::Merge, 2).unwrap();
        assert!(g.check_at(Phase::Merge, 3).is_err());

        let g = kill_at(Phase::Labeling, 0);
        assert!(g.check_at(Phase::Labeling, 0).is_err());
        g.check_at(Phase::Merge, 0).unwrap();

        let g = memory_budget_trip();
        g.check(Phase::Links).unwrap();
        g.charge(2);
        assert!(matches!(
            g.check(Phase::Links),
            Err(RockError::Interrupted {
                reason: TripReason::MemoryBudgetExceeded,
                ..
            })
        ));

        let g = deadline_trip();
        g.arm();
        assert!(matches!(
            g.check(Phase::Sample),
            Err(RockError::Interrupted {
                reason: TripReason::DeadlineExceeded,
                ..
            })
        ));
    }

    #[test]
    fn artifact_injectors_are_deterministic_and_damaging() {
        let image: Vec<u8> = (0..255u8).collect();
        let flipped = flip_artifact_bit(&image, 11);
        assert_eq!(flipped, flip_artifact_bit(&image, 11));
        assert_eq!(flipped.len(), image.len());
        assert_eq!(
            image.iter().zip(&flipped).filter(|(a, b)| a != b).count(),
            1,
            "exactly one byte must differ"
        );
        let cut = truncate_artifact(&image, 11);
        assert_eq!(cut, truncate_artifact(&image, 11));
        assert!(cut.len() < image.len());
        assert_eq!(cut, image[..cut.len()]);
        assert!(flip_artifact_bit(&[], 1).is_empty());
        assert!(truncate_artifact(&[], 1).is_empty());
    }

    #[test]
    fn faulty_artifact_source_recovers_after_burst() {
        use rock_core::artifact::ArtifactSource;
        let image = b"ROCKART1 pretend image".to_vec();
        // Pick a seed whose schedule fires on fetch 0 but not fetch 1,
        // so the burst length alone decides when recovery happens.
        let seed = (0..)
            .find(|&s| {
                seeded_hit(s, STREAM_TRANSIENT, 0, 0.5) && !seeded_hit(s, STREAM_TRANSIENT, 1, 0.5)
            })
            .unwrap();
        let spec = FaultSpec::none(seed).transient(0.5, 2);
        let mut source = FaultyArtifactSource::new(image.clone(), spec);
        // Fetch 0 starts a burst of 2; the third attempt reaches the
        // unscheduled fetch 1 and serves the image intact.
        assert!(source.fetch().is_err());
        assert!(source.fetch().is_err());
        assert_eq!(source.fetch().unwrap(), image);
        assert_eq!(source.injected(), 2);
        // Zero-rate spec is transparent.
        let mut clean = FaultyArtifactSource::new(image.clone(), FaultSpec::none(5));
        assert_eq!(clean.fetch().unwrap(), image);
        assert_eq!(clean.injected(), 0);
    }

    #[test]
    fn corrupted_stream_still_reads_line_by_line() {
        let clean: String = (0..50).map(|i| format!("{i}\n")).collect();
        let spec = FaultSpec::none(3).garbage(0.2).truncate(0.2);
        let corrupted = corrupt_baskets(&clean, &spec);
        let reader = BufReader::new(Cursor::new(corrupted.into_bytes()));
        assert_eq!(reader.lines().count(), 50);
    }
}

//! Small sampling distributions used by the generators.
//!
//! The sanctioned dependency set includes `rand` but not `rand_distr`, so
//! the Gaussian sampler (needed for §5.3's Normal transaction sizes and
//! the mutual-fund factor model) is implemented here via the Box–Muller
//! transform.

use rand::Rng;

/// A normal (Gaussian) distribution sampler, `N(mean, std²)`, using the
/// Box–Muller transform with a cached spare variate.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates the sampler.
    ///
    /// # Panics
    /// Panics if `std` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0");
        Normal { mean, std }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }
}

/// One standard-normal variate via Box–Muller.
///
/// (The pair-caching optimisation is deliberately omitted: it would make
/// sampling stateful and the generators draw few enough variates that the
/// extra `ln`/`sqrt` is irrelevant.)
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to keep ln finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a transaction-size-style sample: Normal, rounded, clamped to
/// `[min, max]` (§5.3's sizes have mean 15 with 98% of mass in 11..=19).
pub fn clamped_normal_usize<R: Rng + ?Sized>(
    normal: &Normal,
    min: usize,
    max: usize,
    rng: &mut R,
) -> usize {
    assert!(min <= max, "min must be <= max");
    let x = normal.sample(rng).round();
    if x < min as f64 {
        min
    } else if x > max as f64 {
        max
    } else {
        x as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = Normal::new(15.0, 1.7);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        assert!((mean - 15.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 1.7).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn paper_size_distribution_shape() {
        // §5.3: mean 15, "98% of transactions have sizes between 11 and
        // 19". σ = 1.7 gives that mass.
        let mut rng = StdRng::seed_from_u64(7);
        let n = Normal::new(15.0, 1.7);
        let total = 20_000;
        let inside = (0..total)
            .filter(|_| {
                let s = n.sample(&mut rng);
                (11.0..=19.0).contains(&s)
            })
            .count();
        let frac = inside as f64 / total as f64;
        assert!(frac > 0.97 && frac < 0.995, "fraction in [11,19]: {frac}");
    }

    #[test]
    fn clamped_sampler_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = Normal::new(5.0, 10.0);
        for _ in 0..1000 {
            let s = clamped_normal_usize(&n, 1, 8, &mut rng);
            assert!((1..=8).contains(&s));
        }
    }

    #[test]
    fn zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = Normal::new(4.0, 0.0);
        assert_eq!(n.sample(&mut rng), 4.0);
    }

    #[test]
    #[should_panic(expected = "std must be finite")]
    fn negative_std_panics() {
        let _ = Normal::new(0.0, -1.0);
    }
}

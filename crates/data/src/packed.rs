//! Bit-packed CSR transaction storage — the cache-friendly point
//! substrate for the parallel neighbor kernel.
//!
//! [`rock_core::neighbors::NeighborGraph::build`] evaluates O(n²)
//! Jaccard coefficients. Over [`Transaction`] slices each evaluation is a
//! sorted-merge intersection: data-dependent branches and two pointer
//! chases per step. [`PackedBaskets`] instead stores every transaction as
//! a fixed-width bitmap row over the item universe, so an intersection is
//! `popcount(rowᵢ & rowⱼ)` over `⌈U/64⌉` words — branch-free, SIMD-friendly
//! and sequentially laid out (row-major in one contiguous `Vec<u64>`).
//! For the paper's §5.3 market-basket universe (~a few hundred items)
//! that is a handful of words per pair.
//!
//! When the universe is too wide for bitmap rows to pay off
//! ([`PackedBaskets::MAX_BITMAP_ITEMS`]), the type transparently falls
//! back to a CSR sorted-merge over an items array — still one contiguous
//! allocation instead of one `Box<[u32]>` per transaction.
//!
//! `sim(i, j)` computes the same Jaccard value as
//! [`Transaction::jaccard`] — the intersection and union sizes are
//! integers either way, so the resulting `f64` is bit-identical and a
//! neighbor graph built over [`PackedBaskets`] equals one built over
//! `PointsWith<Transaction, Jaccard>`.

use rock_core::points::Transaction;
use rock_core::similarity::PairwiseSimilarity;

/// Transactions packed for the O(n²) neighbor scan: bitmap rows when the
/// item universe is narrow, contiguous CSR item lists otherwise.
#[derive(Clone, Debug)]
pub struct PackedBaskets {
    /// CSR offsets into `items`; also the per-row set sizes.
    offsets: Vec<usize>,
    /// Concatenated sorted item ids of every transaction.
    items: Vec<u32>,
    /// Row-major bitmap rows (`rows × words_per_row` words); empty when
    /// the universe exceeds [`Self::MAX_BITMAP_ITEMS`].
    bits: Vec<u64>,
    words_per_row: usize,
    num_items: usize,
}

impl PackedBaskets {
    /// Widest item universe (in distinct item ids) for which bitmap rows
    /// are materialised. Above this, a bitmap row costs more to scan than
    /// a sorted merge over typical basket sizes (≲ tens of items), and
    /// n·⌈U/64⌉ words of storage stop being "cache-friendly".
    pub const MAX_BITMAP_ITEMS: usize = 8192;

    /// Packs `transactions`. Item ids are used as bit positions directly,
    /// so they should be catalog-compacted (as all rock-data generators
    /// and parsers produce them).
    pub fn new(transactions: &[Transaction]) -> Self {
        let num_items = transactions
            .iter()
            .flat_map(|t| t.items().last().copied())
            .max()
            .map_or(0, |m| m as usize + 1);
        let total: usize = transactions.iter().map(Transaction::len).sum();
        let mut offsets = Vec::with_capacity(transactions.len() + 1);
        let mut items = Vec::with_capacity(total);
        offsets.push(0);
        for t in transactions {
            items.extend_from_slice(t.items());
            offsets.push(items.len());
        }
        let (bits, words_per_row) = if num_items <= Self::MAX_BITMAP_ITEMS {
            let words_per_row = num_items.div_ceil(64);
            let mut bits = vec![0u64; transactions.len() * words_per_row];
            for (r, t) in transactions.iter().enumerate() {
                let row = &mut bits[r * words_per_row..(r + 1) * words_per_row];
                for &item in t.items() {
                    row[item as usize / 64] |= 1u64 << (item % 64);
                }
            }
            (bits, words_per_row)
        } else {
            (Vec::new(), 0)
        };
        PackedBaskets {
            offsets,
            items,
            bits,
            words_per_row,
            num_items,
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the item universe (max item id + 1).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Whether the popcount kernel is active (vs the CSR merge fallback).
    pub fn uses_bitmap(&self) -> bool {
        !self.bits.is_empty() || self.is_empty()
    }

    /// The sorted item ids of transaction `i`.
    pub fn items_of(&self, i: usize) -> &[u32] {
        &self.items[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.items.len() * 4
            + self.bits.len() * 8
    }

    /// Expands every row to the §5 boolean 0/1 vector over `num_items`
    /// dimensions — the dense encoding the centroid-family baselines
    /// operate on. Works in both bitmap and CSR modes.
    ///
    /// # Panics
    /// Panics if a row contains an item id ≥ `num_items`.
    pub fn to_dense(&self, num_items: usize) -> Vec<Vec<f64>> {
        (0..self.len())
            .map(|i| {
                let mut v = vec![0.0; num_items];
                for &item in self.items_of(i) {
                    assert!(
                        (item as usize) < num_items,
                        "item id {item} out of range {num_items}"
                    );
                    v[item as usize] = 1.0;
                }
                v
            })
            .collect()
    }

    /// `|Tᵢ ∩ Tⱼ|` via popcount (bitmap) or sorted merge (fallback).
    ///
    /// The bitmap path unrolls to 4-word chunks with four independent
    /// `u64::count_ones` accumulators: integer addition is associative,
    /// so the result is the exact count regardless of grouping, while
    /// the independent chains let the popcounts pipeline instead of
    /// serialising on one running sum.
    #[inline]
    pub fn intersection_size(&self, i: usize, j: usize) -> usize {
        if !self.bits.is_empty() {
            let w = self.words_per_row;
            let a = &self.bits[i * w..(i + 1) * w];
            let b = &self.bits[j * w..(j + 1) * w];
            let mut chunks_a = a.chunks_exact(4);
            let mut chunks_b = b.chunks_exact(4);
            let (mut c0, mut c1, mut c2, mut c3) = (0u32, 0u32, 0u32, 0u32);
            // tidy-allow(counter-coverage): per-pair metering would put an atomic add in the innermost kernel — callers (links/neighbors drivers) count pairs and bytes in aggregate per invocation
            // tidy:kernel-hot-loop — popcount intersection
            for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
                c0 += (ca[0] & cb[0]).count_ones();
                c1 += (ca[1] & cb[1]).count_ones();
                c2 += (ca[2] & cb[2]).count_ones();
                c3 += (ca[3] & cb[3]).count_ones();
            }
            let mut rest = 0u32;
            for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
                rest += (x & y).count_ones();
            }
            // tidy:end-kernel-hot-loop
            (c0 + c1 + c2 + c3 + rest) as usize
        } else {
            let (mut a, mut b) = (self.items_of(i), self.items_of(j));
            let mut count = 0;
            while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => a = &a[1..],
                    std::cmp::Ordering::Greater => b = &b[1..],
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        a = &a[1..];
                        b = &b[1..];
                    }
                }
            }
            count
        }
    }
}

impl PairwiseSimilarity for PackedBaskets {
    fn len(&self) -> usize {
        self.len()
    }

    /// Jaccard coefficient, matching [`Transaction::jaccard`] bit for bit
    /// (both compute `inter as f64 / union as f64` from the same integer
    /// sizes, with two empty transactions defined as similarity 0).
    fn sim(&self, i: usize, j: usize) -> f64 {
        let inter = self.intersection_size(i, j);
        let union = self.items_of(i).len() + self.items_of(j).len() - inter;
        if union == 0 {
            return 0.0;
        }
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_core::neighbors::NeighborGraph;
    use rock_core::similarity::{Jaccard, PointsWith};

    fn sample_transactions() -> Vec<Transaction> {
        vec![
            Transaction::from([0, 1, 2]),
            Transaction::from([0, 1, 3]),
            Transaction::from([2, 3, 4, 70]),
            Transaction::new(vec![]),
            Transaction::from([64, 65, 127, 128]),
            Transaction::from([0, 1, 2]),
        ]
    }

    #[test]
    fn jaccard_matches_transactions_bitwise() {
        let ts = sample_transactions();
        let packed = PackedBaskets::new(&ts);
        assert!(packed.uses_bitmap());
        let reference = PointsWith::new(&ts, Jaccard);
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                // Bit-identical f64s, so exact compare is intended.
                assert_eq!(packed.sim(i, j), reference.sim(i, j), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn csr_fallback_matches_bitmap_path() {
        // Same baskets, but one huge item id forces the merge fallback.
        let mut ts = sample_transactions();
        ts.push(Transaction::from([0, 1_000_000]));
        let packed = PackedBaskets::new(&ts);
        assert!(!packed.uses_bitmap());
        let reference = PointsWith::new(&ts, Jaccard);
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                assert_eq!(packed.sim(i, j), reference.sim(i, j), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn neighbor_graph_equals_transaction_graph() {
        let ts: Vec<Transaction> = (0..120)
            .map(|i: u32| {
                let base = (i % 10) * 7;
                Transaction::from([base, base + 1, base + 2, i % 5 + 90])
            })
            .collect();
        let packed = PackedBaskets::new(&ts);
        let from_packed = NeighborGraph::build(&packed, 0.3);
        let from_transactions = NeighborGraph::build(&PointsWith::new(&ts, Jaccard), 0.3);
        assert_eq!(from_packed, from_transactions);
        // And the parallel builder over packed rows agrees too.
        assert_eq!(
            NeighborGraph::build_parallel(&packed, 0.3, 4),
            from_transactions
        );
    }

    #[test]
    fn unrolled_popcount_covers_chunks_and_remainder() {
        // 300 items → words_per_row = 5: one full 4-word chunk plus a
        // remainder word, exercising both halves of the unrolled loop.
        let ts: Vec<Transaction> = (0..40)
            .map(|i: u32| {
                let items: Vec<u32> = (0..300u32)
                    .filter(|&x| (x.wrapping_mul(2654435761) ^ i) % 7 < 2)
                    .collect();
                Transaction::new(items)
            })
            .collect();
        let packed = PackedBaskets::new(&ts);
        assert!(packed.uses_bitmap());
        assert!(packed.num_items() > 4 * 64, "need >4 words per row");
        let reference = PointsWith::new(&ts, Jaccard);
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                assert_eq!(packed.sim(i, j), reference.sim(i, j), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn accessors() {
        let ts = sample_transactions();
        let packed = PackedBaskets::new(&ts);
        assert_eq!(packed.len(), ts.len());
        assert!(!packed.is_empty());
        assert_eq!(packed.num_items(), 129);
        assert_eq!(packed.items_of(2), &[2, 3, 4, 70]);
        assert_eq!(packed.items_of(3), &[] as &[u32]);
        assert!(packed.memory_bytes() > 0);

        let empty = PackedBaskets::new(&[]);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.num_items(), 0);
    }

    #[test]
    fn to_dense_expands_rows() {
        let ts = vec![Transaction::from([0, 2]), Transaction::new(vec![])];
        let packed = PackedBaskets::new(&ts);
        assert_eq!(
            packed.to_dense(4),
            vec![vec![1.0, 0.0, 1.0, 0.0], vec![0.0; 4]]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn to_dense_rejects_narrow_universe() {
        let packed = PackedBaskets::new(&[Transaction::from([9])]);
        let _ = packed.to_dense(5);
    }

    #[test]
    fn empty_transactions_follow_the_jaccard_empty_convention() {
        let ts = vec![Transaction::new(vec![]), Transaction::new(vec![])];
        let packed = PackedBaskets::new(&ts);
        // Matches Transaction::jaccard: empty vs empty is defined as 0.
        assert_eq!(packed.sim(0, 1), 0.0);
    }
}

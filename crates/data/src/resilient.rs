//! Fault-tolerant streaming ingest and labeling — the Fig.-2 "label data
//! on disk" phase hardened for real disks.
//!
//! The paper's pipeline clusters a sample in memory and then makes one
//! sequential pass over the disk-resident database to label every record
//! (§4.6). On real storage that pass meets transient read errors, torn
//! lines and garbage tokens. This module makes the pass *resilient*:
//!
//! * transient I/O errors ([`io::ErrorKind::Interrupted`],
//!   [`io::ErrorKind::WouldBlock`], [`io::ErrorKind::TimedOut`]) are
//!   retried with bounded exponential backoff ([`RetryPolicy`]);
//! * malformed records — unparsable tokens, or records whose similarity
//!   evaluation degenerates to NaN — are *quarantined* (skipped and
//!   recorded in the [`RunReport`]) up to a configurable cap;
//! * progress is checkpointed periodically ([`Checkpoint`]: byte offset
//!   plus cumulative labeling counts), and a run interrupted by a hard
//!   failure can resume from its checkpoint and produce output
//!   bit-identical to an uninterrupted run over the same bytes;
//! * every stop is a typed [`IngestError`] carrying the last consistent
//!   checkpoint and everything salvaged before the failure — never a
//!   panic, never silent data loss.
//!
//! Determinism contract: the drivers themselves are deterministic (no
//! RNG); given the same bytes, labeler and similarity measure, an
//! interrupted-then-resumed run yields exactly the assignments and final
//! checkpoint of an uninterrupted run. The fault-injection harness
//! ([`crate::faults`]) keeps its schedules deterministic for the same
//! reason, so the resilience tests can assert bit-identity.

// IngestError is intentionally heavy: it must carry the full salvage
// state (run report, checkpoint, partial assignments) or an interrupted
// run could not resume losslessly.
#![allow(clippy::result_large_err)]

use rock_core::governor::{Phase, RunGovernor, TripReason};
use rock_core::labeling::{Labeler, Labeling};
use rock_core::points::Transaction;
use rock_core::report::RunReport;
use rock_core::similarity::Similarity;
use rock_core::RockError;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead};
use std::time::{Duration, Instant};

pub use rock_core::util::retry::RetryPolicy;

/// Configuration for the resilient drivers.
#[derive(Clone, Debug)]
pub struct ResilientConfig {
    /// Transient-error retry policy. The budget applies per record: each
    /// record read gets up to `max_retries` retries before the error is
    /// surfaced as hard.
    pub retry: RetryPolicy,
    /// Hard cap on quarantined records (cumulative across resumptions);
    /// exceeding it aborts with [`IngestErrorKind::QuarantineOverflow`].
    pub max_quarantine: usize,
    /// How many quarantined records keep per-record detail in the report
    /// (the counter is always exact).
    pub quarantine_detail: usize,
    /// Emit a checkpoint every this many input lines (0 = no periodic
    /// checkpoints; the final state is always returned).
    pub checkpoint_every: u64,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            // Ingest reads disks and sockets, so it retries a little
            // longer than the unified RetryPolicy default.
            retry: RetryPolicy {
                max_retries: 4,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_secs(1),
                jitter_seed: None,
            },
            max_quarantine: 64,
            quarantine_detail: 16,
            checkpoint_every: 1024,
        }
    }
}

/// Resumable progress of a resilient pass: where in the byte stream the
/// next record starts, plus cumulative counts over *all* invocations so
/// far (unlike the per-invocation [`RunReport`]).
///
/// Serialises to a small line-oriented text format via
/// [`Checkpoint::encode`] / [`Checkpoint::decode`] so it can be persisted
/// next to the data without any serialization dependency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Byte offset of the first unprocessed line.
    pub byte_offset: u64,
    /// Input lines fully consumed (data, blank and comment alike).
    pub lines_seen: u64,
    /// Records successfully labeled/ingested.
    pub records_read: u64,
    /// Blank/comment lines skipped.
    pub records_skipped: u64,
    /// Records quarantined.
    pub records_quarantined: u64,
    /// Cumulative per-cluster assignment counts (labeling driver; empty
    /// for the plain reader).
    pub cluster_counts: Vec<u64>,
    /// Cumulative outliers (labeling driver).
    pub outliers: u64,
}

impl Checkpoint {
    /// A fresh checkpoint at the start of the stream.
    pub fn new(num_clusters: usize) -> Self {
        Checkpoint {
            byte_offset: 0,
            lines_seen: 0,
            records_read: 0,
            records_skipped: 0,
            records_quarantined: 0,
            cluster_counts: vec![0; num_clusters],
            outliers: 0,
        }
    }

    /// Encodes the checkpoint as line-oriented text.
    pub fn encode(&self) -> String {
        let counts: Vec<String> = self.cluster_counts.iter().map(u64::to_string).collect();
        format!(
            "rock-checkpoint v1\n\
             byte_offset={}\n\
             lines_seen={}\n\
             records_read={}\n\
             records_skipped={}\n\
             records_quarantined={}\n\
             outliers={}\n\
             cluster_counts={}\n",
            self.byte_offset,
            self.lines_seen,
            self.records_read,
            self.records_skipped,
            self.records_quarantined,
            self.outliers,
            counts.join(",")
        )
    }

    /// Decodes a checkpoint produced by [`Checkpoint::encode`].
    ///
    /// # Errors
    /// `InvalidData` on a bad header, an unknown/duplicate/missing field
    /// or an unparsable number.
    pub fn decode(text: &str) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut lines = text.lines();
        match lines.next() {
            Some("rock-checkpoint v1") => {}
            other => return Err(bad(format!("bad checkpoint header: {other:?}"))),
        }
        let mut cp = Checkpoint::new(0);
        let mut seen = [false; 7];
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("bad checkpoint line: {line:?}")))?;
            let idx = match key {
                "byte_offset" => 0,
                "lines_seen" => 1,
                "records_read" => 2,
                "records_skipped" => 3,
                "records_quarantined" => 4,
                "outliers" => 5,
                "cluster_counts" => 6,
                _ => return Err(bad(format!("unknown checkpoint field: {key:?}"))),
            };
            if seen[idx] {
                return Err(bad(format!("duplicate checkpoint field: {key:?}")));
            }
            seen[idx] = true;
            let parse = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| bad(format!("bad value for {key}: {v:?}")))
            };
            match idx {
                0 => cp.byte_offset = parse(value)?,
                1 => cp.lines_seen = parse(value)?,
                2 => cp.records_read = parse(value)?,
                3 => cp.records_skipped = parse(value)?,
                4 => cp.records_quarantined = parse(value)?,
                5 => cp.outliers = parse(value)?,
                _ => {
                    cp.cluster_counts = value
                        .split(',')
                        .filter(|t| !t.is_empty())
                        .map(parse)
                        .collect::<io::Result<_>>()?;
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            let names = [
                "byte_offset",
                "lines_seen",
                "records_read",
                "records_skipped",
                "records_quarantined",
                "outliers",
                "cluster_counts",
            ];
            return Err(bad(format!("missing checkpoint field: {}", names[missing])));
        }
        Ok(cp)
    }
}

/// Why a resilient pass stopped early.
#[derive(Debug)]
pub enum IngestErrorKind {
    /// A non-transient I/O error, or a transient one that exhausted its
    /// retry budget.
    Io(io::Error),
    /// The cumulative quarantine count exceeded
    /// [`ResilientConfig::max_quarantine`].
    QuarantineOverflow {
        /// The configured cap that was exceeded.
        cap: usize,
    },
    /// The resume checkpoint is inconsistent with this labeler or stream.
    BadCheckpoint(String),
    /// A [`RunGovernor`] budget tripped (cancellation, deadline or
    /// memory). The carried checkpoint is consistent, so the pass can
    /// resume once the budget is lifted — this is an orderly pause, not
    /// a failure.
    Interrupted {
        /// The phase that observed the trip (always
        /// [`Phase::Labeling`] for these drivers).
        phase: Phase,
        /// Which budget tripped.
        reason: TripReason,
    },
}

/// Typed failure of a resilient pass, carrying everything salvaged before
/// the stop so no processed work is lost.
///
/// [`IngestError::checkpoint`] is the last *consistent* state — its byte
/// offset points at the first unprocessed line, so passing it back as
/// `resume` continues exactly where this run stopped.
#[derive(Debug)]
pub struct IngestError {
    /// What stopped the run.
    pub kind: IngestErrorKind,
    /// 1-based input line at which the run stopped.
    pub line: u64,
    /// Degradation observed by this invocation up to the stop.
    pub report: RunReport,
    /// Last consistent cumulative state; resume from here.
    pub checkpoint: Checkpoint,
    /// Assignments produced by this invocation before the stop (labeling
    /// driver; empty for the plain reader).
    pub partial_assignments: Vec<Option<usize>>,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            IngestErrorKind::Io(e) => write!(
                f,
                "ingest stopped at line {}: {e} (resume from byte {})",
                self.line, self.checkpoint.byte_offset
            ),
            IngestErrorKind::QuarantineOverflow { cap } => write!(
                f,
                "ingest stopped at line {}: quarantine cap {cap} exceeded",
                self.line
            ),
            IngestErrorKind::BadCheckpoint(msg) => {
                write!(f, "cannot resume: {msg}")
            }
            IngestErrorKind::Interrupted { phase, reason } => write!(
                f,
                "ingest interrupted at line {} in {phase} phase: {reason} \
                 (resume from byte {})",
                self.line, self.checkpoint.byte_offset
            ),
        }
    }
}

impl Error for IngestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            IngestErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Result of one resilient labeling invocation.
#[derive(Clone, Debug)]
pub struct ResilientLabelRun {
    /// Labeling of the records processed by *this* invocation (a resumed
    /// run labels only the suffix; concatenate assignments across
    /// invocations to reconstruct the whole pass).
    pub labeling: Labeling,
    /// Degradation and timing for this invocation.
    pub report: RunReport,
    /// Cumulative end state (resumable).
    pub checkpoint: Checkpoint,
}

/// What the per-record handler did with a parsed record.
enum Handled {
    /// Plain ingest: record accepted.
    Stored,
    /// Labeling: record assigned to a cluster (`Some`) or declared an
    /// outlier (`None`).
    Labeled(Option<usize>),
    /// Record rejected; quarantine it with this reason.
    Quarantine(String),
}

/// What one consumed input line turned out to be.
enum LineOutcome {
    /// Blank or comment line.
    Skip,
    /// A record the handler processed (or rejected).
    Record(Handled),
}

/// Shared mutable state of one ingest loop.
struct LoopState {
    checkpoint: Checkpoint,
    report: RunReport,
}

/// Folds one consumed line's outcome into the loop state — quarantine
/// accounting, cluster counters and the periodic-checkpoint cadence.
///
/// Both the sequential [`ingest_loop`] and the batched parallel driver
/// ([`label_stream_resilient_parallel`]) route every line through this
/// single function, which is what makes their checkpoints and reports
/// bit-identical. The caller has already advanced `byte_offset` and
/// `lines_seen` for this line.
fn fold_outcome<F: FnMut(&Checkpoint)>(
    state: &mut LoopState,
    config: &ResilientConfig,
    lineno: u64,
    outcome: LineOutcome,
    since_checkpoint: &mut u64,
    on_checkpoint: &mut F,
) -> Result<(), (IngestErrorKind, u64)> {
    match outcome {
        LineOutcome::Skip => {
            state.checkpoint.records_skipped += 1;
            state.report.records_skipped += 1;
        }
        LineOutcome::Record(Handled::Stored) => {
            state.checkpoint.records_read += 1;
            state.report.records_read += 1;
        }
        LineOutcome::Record(Handled::Labeled(assignment)) => {
            state.checkpoint.records_read += 1;
            state.report.records_read += 1;
            match assignment {
                Some(c) => state.checkpoint.cluster_counts[c] += 1,
                None => {
                    state.checkpoint.outliers += 1;
                    state.report.outliers += 1;
                }
            }
        }
        LineOutcome::Record(Handled::Quarantine(reason)) => {
            state.checkpoint.records_quarantined += 1;
            state
                .report
                .quarantine(lineno, reason, config.quarantine_detail);
            if state.checkpoint.records_quarantined > config.max_quarantine as u64 {
                return Err((
                    IngestErrorKind::QuarantineOverflow {
                        cap: config.max_quarantine,
                    },
                    lineno,
                ));
            }
        }
    }
    *since_checkpoint += 1;
    if config.checkpoint_every > 0 && *since_checkpoint >= config.checkpoint_every {
        *since_checkpoint = 0;
        on_checkpoint(&state.checkpoint);
        state.report.checkpoints_written += 1;
    }
    Ok(())
}

/// Reads one line (through `\n` or EOF) with retries, returning the bytes
/// consumed from the reader. Uses `read_until` on raw bytes so invalid
/// UTF-8 damages at most the affected record (lossily decoded, then
/// quarantined by the parser) instead of aborting the pass.
fn read_record_retry<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    retry: &RetryPolicy,
    report: &mut RunReport,
) -> io::Result<usize> {
    let start = buf.len();
    let mut attempts = 0u32;
    loop {
        match reader.read_until(b'\n', buf) {
            // Partial bytes from failed attempts are already in `buf`, so
            // the total consumed is the length delta, not this call's n.
            Ok(_) => return Ok(buf.len() - start),
            Err(e) if RetryPolicy::is_transient(&e) => {
                report.transient_io_errors += 1;
                if attempts >= retry.max_retries {
                    return Err(e);
                }
                let delay = retry.backoff(attempts);
                attempts += 1;
                report.io_retries += 1;
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Discards exactly `n` bytes (the resume skip), retrying transients.
fn skip_bytes<R: BufRead>(
    reader: &mut R,
    mut n: u64,
    retry: &RetryPolicy,
    report: &mut RunReport,
) -> io::Result<()> {
    let mut attempts = 0u32;
    while n > 0 {
        let available = match reader.fill_buf() {
            Ok(buf) => buf.len(),
            Err(e) if RetryPolicy::is_transient(&e) => {
                report.transient_io_errors += 1;
                if attempts >= retry.max_retries {
                    return Err(e);
                }
                let delay = retry.backoff(attempts);
                attempts += 1;
                report.io_retries += 1;
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if available == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("checkpoint offset lies {n} bytes beyond end of stream"),
            ));
        }
        let take = (available as u64).min(n) as usize;
        reader.consume(take);
        n -= take as u64;
    }
    Ok(())
}

/// Parses a trimmed non-comment basket line into a numeric transaction.
fn parse_record(line: &str) -> Result<Transaction, String> {
    let mut items = Vec::new();
    for t in crate::basketio::tokens(line) {
        match t.parse::<u32>() {
            Ok(item) => items.push(item),
            Err(_) => return Err(format!("bad item token {t:?}")),
        }
    }
    Ok(Transaction::new(items))
}

/// Converts a governor trip into an ingest stop, recording the
/// interruption in the report. Only `RockError::Interrupted` reaches
/// here (it is all the governor's checks return).
fn interrupt_stop(e: RockError, report: &mut RunReport, line: u64) -> (IngestErrorKind, u64) {
    let RockError::Interrupted { phase, reason, .. } = e else {
        // tidy-allow(panic): only RockError::Interrupted reaches this adapter: it is all the governor's checks return
        unreachable!("governor checks only return RockError::Interrupted, got {e}");
    };
    report.interrupted = Some((phase, reason));
    (IngestErrorKind::Interrupted { phase, reason }, line)
}

/// The shared record loop: reads lines with retries, parses, hands each
/// record to `handle`, quarantines rejects, maintains the checkpoint and
/// emits periodic checkpoints. Returns `(kind, line)` on a hard stop; the
/// caller owns the salvage.
///
/// The governor is consulted before each line at checkpoint index
/// `lines_seen` (cumulative across resumptions), so an injected
/// `with_kill_at(Phase::Labeling, k)` stops with exactly `k` lines
/// consumed regardless of where the run was last resumed.
fn ingest_loop<R, F, H>(
    reader: &mut R,
    config: &ResilientConfig,
    governor: &RunGovernor,
    state: &mut LoopState,
    on_checkpoint: &mut F,
    handle: &mut H,
) -> Result<(), (IngestErrorKind, u64)>
where
    R: BufRead,
    F: FnMut(&Checkpoint),
    H: FnMut(u64, Transaction) -> Handled,
{
    let mut buf = Vec::new();
    let mut since_checkpoint = 0u64;
    loop {
        if let Err(e) = governor.check_at(Phase::Labeling, state.checkpoint.lines_seen) {
            let line = state.checkpoint.lines_seen + 1;
            return Err(interrupt_stop(e, &mut state.report, line));
        }
        buf.clear();
        let consumed = read_record_retry(reader, &mut buf, &config.retry, &mut state.report)
            .map_err(|e| (IngestErrorKind::Io(e), state.checkpoint.lines_seen + 1))?;
        if consumed == 0 {
            return Ok(());
        }
        state.checkpoint.byte_offset += consumed as u64;
        state.checkpoint.lines_seen += 1;
        let lineno = state.checkpoint.lines_seen;

        let text = String::from_utf8_lossy(&buf);
        let line = text.trim();
        let outcome = if line.is_empty() || line.starts_with('#') {
            LineOutcome::Skip
        } else {
            LineOutcome::Record(match parse_record(line) {
                Ok(txn) => handle(lineno, txn),
                Err(reason) => Handled::Quarantine(reason),
            })
        };
        fold_outcome(
            state,
            config,
            lineno,
            outcome,
            &mut since_checkpoint,
            on_checkpoint,
        )?;
    }
}

/// Prepares the loop state for a run, validating any resume checkpoint.
fn start_state(
    resume: Option<&Checkpoint>,
    num_clusters: usize,
) -> Result<LoopState, IngestError> {
    let mut report = RunReport::new();
    let checkpoint = match resume {
        Some(cp) => {
            if cp.cluster_counts.len() != num_clusters {
                return Err(IngestError {
                    kind: IngestErrorKind::BadCheckpoint(format!(
                        "checkpoint has {} cluster counters but the labeler has {} clusters",
                        cp.cluster_counts.len(),
                        num_clusters
                    )),
                    line: cp.lines_seen,
                    report: RunReport::new(),
                    checkpoint: cp.clone(),
                    partial_assignments: Vec::new(),
                });
            }
            report.resumed_from_offset = Some(cp.byte_offset);
            cp.clone()
        }
        None => Checkpoint::new(num_clusters),
    };
    Ok(LoopState { report, checkpoint })
}

/// Streams numeric basket lines from `reader`, labeling each record
/// against `labeler` (§4.6) with retries, quarantine and checkpoints.
///
/// * `resume` — a [`Checkpoint`] from an earlier interrupted run over the
///   same byte stream; the driver skips to its byte offset and continues.
///   Pass `None` to start from the beginning.
/// * `on_checkpoint` — invoked with the cumulative state every
///   [`ResilientConfig::checkpoint_every`] input lines; persist it (e.g.
///   [`Checkpoint::encode`]) to make the pass resumable.
///
/// Records whose tokens fail to parse, or whose similarity to any
/// labeling point is non-finite
/// ([`rock_core::RockError::NonFiniteSimilarity`], detected via
/// [`Labeler::label_point_checked`]), are quarantined rather than
/// mislabeled. The returned [`ResilientLabelRun`] holds this invocation's
/// [`Labeling`], its [`RunReport`] and the final cumulative
/// [`Checkpoint`].
///
/// # Errors
/// [`IngestError`] on a hard I/O failure, quarantine overflow or an
/// inconsistent resume checkpoint — always carrying the partial results
/// and a resumable checkpoint.
pub fn label_stream_resilient<R, S, F>(
    reader: R,
    labeler: &Labeler<Transaction>,
    sim: &S,
    config: &ResilientConfig,
    resume: Option<&Checkpoint>,
    on_checkpoint: F,
) -> Result<ResilientLabelRun, IngestError>
where
    R: BufRead,
    S: Similarity<Transaction>,
    F: FnMut(&Checkpoint),
{
    label_stream_resilient_governed(
        reader,
        labeler,
        sim,
        config,
        resume,
        on_checkpoint,
        &RunGovernor::unlimited(),
    )
}

/// As [`label_stream_resilient`], governed: `governor` is consulted
/// before every input line (at checkpoint index `lines_seen`, cumulative
/// across resumptions), so cancellation, deadlines, memory trips and
/// injected kills (`with_kill_at(Phase::Labeling, k)`) stop the pass with
/// a consistent, resumable [`Checkpoint`] —
/// [`IngestErrorKind::Interrupted`], with the trip mirrored in the
/// report's `interrupted` field. With an unlimited governor, behaviour is
/// exactly that of [`label_stream_resilient`].
///
/// # Errors
/// The errors of [`label_stream_resilient`], plus
/// [`IngestErrorKind::Interrupted`] on a governor trip.
pub fn label_stream_resilient_governed<R, S, F>(
    mut reader: R,
    labeler: &Labeler<Transaction>,
    sim: &S,
    config: &ResilientConfig,
    resume: Option<&Checkpoint>,
    mut on_checkpoint: F,
    governor: &RunGovernor,
) -> Result<ResilientLabelRun, IngestError>
where
    R: BufRead,
    S: Similarity<Transaction>,
    F: FnMut(&Checkpoint),
{
    let started = Instant::now();
    let num_clusters = labeler.num_clusters();
    let mut state = start_state(resume, num_clusters)?;
    let mut assignments: Vec<Option<usize>> = Vec::new();

    let outcome = match skip_bytes(
        &mut reader,
        state.checkpoint.byte_offset,
        &config.retry,
        &mut state.report,
    ) {
        Err(e) => Err((IngestErrorKind::Io(e), state.checkpoint.lines_seen)),
        Ok(()) => ingest_loop(
            &mut reader,
            config,
            governor,
            &mut state,
            &mut on_checkpoint,
            &mut |_lineno, txn| match labeler.label_point_checked(&txn, sim) {
                Ok(assignment) => {
                    assignments.push(assignment);
                    Handled::Labeled(assignment)
                }
                Err(RockError::NonFiniteSimilarity { value }) => {
                    Handled::Quarantine(format!("non-finite similarity {value}"))
                }
                Err(e) => Handled::Quarantine(e.to_string()),
            },
        ),
    };

    state.report.record_phase("label-stream", started.elapsed());
    let labeling = collect_labeling(&assignments, num_clusters);
    match outcome {
        Ok(()) => Ok(ResilientLabelRun {
            labeling,
            report: state.report,
            checkpoint: state.checkpoint,
        }),
        Err((kind, line)) => Err(IngestError {
            kind,
            line,
            report: state.report,
            checkpoint: state.checkpoint,
            partial_assignments: assignments,
        }),
    }
}

/// Lines per read-score-fold round of the parallel labeling driver.
/// Large enough to amortise the scatter/gather, small enough that a hard
/// failure wastes at most one batch of speculative scoring.
const PARALLEL_LABEL_BATCH: usize = 4096;

/// A read-ahead line awaiting the sequential fold.
enum PreLine {
    /// Blank or comment line.
    Skip,
    /// Parsed record; index into this batch's scoring slots.
    Txn(usize),
    /// Parse failure to quarantine.
    Bad(String),
}

/// As [`label_stream_resilient`], with similarity scoring fanned out
/// across `threads` rayon workers.
///
/// The stream is processed in rounds of [`PARALLEL_LABEL_BATCH`] lines:
/// reads (with retries) and parsing stay sequential, the per-record
/// [`Labeler::label_point_checked`] calls — the O(sample)·O(stream) hot
/// loop — run in parallel over contiguous chunks of the batch, and the
/// results are folded back through the *same* per-line state machine as
/// the sequential driver ([`fold_outcome`]). Scoring is pure, chunk
/// results land in pre-assigned slots, and the fold walks lines in input
/// order, so assignments, [`RunReport`], periodic checkpoint cadence and
/// every salvaged [`IngestError`] are bit-identical to
/// [`label_stream_resilient`] for any thread count — including resuming
/// a sequential run from a parallel run's checkpoint and vice versa.
///
/// On a mid-batch hard stop (quarantine overflow), lines read beyond the
/// stopping line were speculatively scored but are *not* folded: the
/// returned checkpoint's byte offset still points at the first
/// unprocessed line.
///
/// # Errors
/// Exactly the errors of [`label_stream_resilient`].
///
/// # Panics
/// Panics if `threads == 0`.
pub fn label_stream_resilient_parallel<R, S, F>(
    reader: R,
    labeler: &Labeler<Transaction>,
    sim: &S,
    config: &ResilientConfig,
    resume: Option<&Checkpoint>,
    on_checkpoint: F,
    threads: usize,
) -> Result<ResilientLabelRun, IngestError>
where
    R: BufRead,
    S: Similarity<Transaction> + Sync,
    F: FnMut(&Checkpoint),
{
    label_stream_resilient_parallel_governed(
        reader,
        labeler,
        sim,
        config,
        resume,
        on_checkpoint,
        &RunGovernor::unlimited(),
        threads,
    )
}

/// As [`label_stream_resilient_parallel`], governed.
///
/// The governor is consulted in the sequential fold at the same per-line
/// checkpoint indices as [`label_stream_resilient_governed`], so a trip
/// stops at the *same line* with the same checkpoint for every thread
/// count; speculatively read/scored lines beyond the stop are discarded
/// (the checkpoint's byte offset still points at the first unprocessed
/// line, exactly as in the mid-batch quarantine-overflow case).
///
/// # Errors
/// The errors of [`label_stream_resilient_parallel`], plus
/// [`IngestErrorKind::Interrupted`] on a governor trip.
///
/// # Panics
/// Panics if `threads == 0`.
#[allow(clippy::too_many_arguments)]
pub fn label_stream_resilient_parallel_governed<R, S, F>(
    mut reader: R,
    labeler: &Labeler<Transaction>,
    sim: &S,
    config: &ResilientConfig,
    resume: Option<&Checkpoint>,
    mut on_checkpoint: F,
    governor: &RunGovernor,
    threads: usize,
) -> Result<ResilientLabelRun, IngestError>
where
    R: BufRead,
    S: Similarity<Transaction> + Sync,
    F: FnMut(&Checkpoint),
{
    assert!(threads > 0, "need at least one thread");
    if threads == 1 {
        return label_stream_resilient_governed(
            reader,
            labeler,
            sim,
            config,
            resume,
            on_checkpoint,
            governor,
        );
    }
    let started = Instant::now();
    let num_clusters = labeler.num_clusters();
    let mut state = start_state(resume, num_clusters)?;
    let mut assignments: Vec<Option<usize>> = Vec::new();
    let mut since_checkpoint = 0u64;

    let finish_err = |state: LoopState,
                      assignments: Vec<Option<usize>>,
                      kind: IngestErrorKind,
                      line: u64| {
        let mut report = state.report;
        report.record_phase("label-stream", started.elapsed());
        Err(IngestError {
            kind,
            line,
            report,
            checkpoint: state.checkpoint,
            partial_assignments: assignments,
        })
    };

    if let Err(e) = skip_bytes(
        &mut reader,
        state.checkpoint.byte_offset,
        &config.retry,
        &mut state.report,
    ) {
        let line = state.checkpoint.lines_seen;
        return finish_err(state, assignments, IngestErrorKind::Io(e), line);
    }

    let mut buf = Vec::new();
    'rounds: loop {
        // Phase 1 — sequential read-ahead of one batch.
        let mut lines: Vec<(u64, PreLine)> = Vec::with_capacity(PARALLEL_LABEL_BATCH);
        let mut batch_txns: Vec<Transaction> = Vec::new();
        let mut read_error: Option<io::Error> = None;
        let mut eof = false;
        while lines.len() < PARALLEL_LABEL_BATCH {
            buf.clear();
            match read_record_retry(&mut reader, &mut buf, &config.retry, &mut state.report) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(consumed) => {
                    let text = String::from_utf8_lossy(&buf);
                    let line = text.trim();
                    let pre = if line.is_empty() || line.starts_with('#') {
                        PreLine::Skip
                    } else {
                        match parse_record(line) {
                            Ok(txn) => {
                                batch_txns.push(txn);
                                PreLine::Txn(batch_txns.len() - 1)
                            }
                            Err(reason) => PreLine::Bad(reason),
                        }
                    };
                    lines.push((consumed as u64, pre));
                }
                Err(e) => {
                    // Fold what we have, then surface the error at the
                    // line after the last consumed one — as the
                    // sequential driver would.
                    read_error = Some(e);
                    break;
                }
            }
        }

        // Phase 2 — parallel scoring of this batch's parsed records.
        let mut scored: Vec<Option<Result<Option<usize>, RockError>>> =
            vec![None; batch_txns.len()];
        if !batch_txns.is_empty() {
            let chunk = batch_txns.len().div_ceil(threads);
            rayon::scope(|scope| {
                for (part, slots) in batch_txns.chunks(chunk).zip(scored.chunks_mut(chunk)) {
                    scope.spawn(move |_| {
                        for (txn, slot) in part.iter().zip(slots.iter_mut()) {
                            *slot = Some(labeler.label_point_checked(txn, sim));
                        }
                    });
                }
            });
        }

        // Phase 3 — sequential fold through the shared state machine.
        for (consumed, pre) in lines {
            // Same per-line checkpoint index as the sequential driver, so
            // a trip stops at an identical line for every thread count.
            if let Err(e) = governor.check_at(Phase::Labeling, state.checkpoint.lines_seen) {
                let line = state.checkpoint.lines_seen + 1;
                let (kind, line) = interrupt_stop(e, &mut state.report, line);
                return finish_err(state, assignments, kind, line);
            }
            state.checkpoint.byte_offset += consumed;
            state.checkpoint.lines_seen += 1;
            let lineno = state.checkpoint.lines_seen;
            let outcome = match pre {
                PreLine::Skip => LineOutcome::Skip,
                PreLine::Bad(reason) => LineOutcome::Record(Handled::Quarantine(reason)),
                PreLine::Txn(slot) => {
                    // tidy-allow(panic): the scored batch holds one entry per parsed record, each taken exactly once in line order
                    let result = scored[slot].take().expect("every parsed record is scored");
                    LineOutcome::Record(match result {
                        Ok(assignment) => {
                            assignments.push(assignment);
                            Handled::Labeled(assignment)
                        }
                        Err(RockError::NonFiniteSimilarity { value }) => {
                            Handled::Quarantine(format!("non-finite similarity {value}"))
                        }
                        Err(e) => Handled::Quarantine(e.to_string()),
                    })
                }
            };
            if let Err((kind, line)) = fold_outcome(
                &mut state,
                config,
                lineno,
                outcome,
                &mut since_checkpoint,
                &mut on_checkpoint,
            ) {
                return finish_err(state, assignments, kind, line);
            }
        }

        if let Some(e) = read_error {
            let line = state.checkpoint.lines_seen + 1;
            return finish_err(state, assignments, IngestErrorKind::Io(e), line);
        }
        if eof {
            break 'rounds;
        }
    }

    state.report.record_phase("label-stream", started.elapsed());
    let labeling = collect_labeling(&assignments, num_clusters);
    Ok(ResilientLabelRun {
        labeling,
        report: state.report,
        checkpoint: state.checkpoint,
    })
}

/// Reads numeric basket records with retries, quarantine and checkpoints
/// but no labeling — the resilient counterpart of
/// [`crate::basketio::read_baskets_numeric`].
///
/// # Errors
/// [`IngestError`] on a hard I/O failure or quarantine overflow (its
/// `partial_assignments` is always empty for this driver).
pub fn read_baskets_resilient<R: BufRead>(
    mut reader: R,
    config: &ResilientConfig,
    resume: Option<&Checkpoint>,
) -> Result<(Vec<Transaction>, RunReport, Checkpoint), IngestError> {
    let started = Instant::now();
    let mut state = start_state(resume, resume.map_or(0, |cp| cp.cluster_counts.len()))?;
    let mut out = Vec::new();

    let outcome = match skip_bytes(
        &mut reader,
        state.checkpoint.byte_offset,
        &config.retry,
        &mut state.report,
    ) {
        Err(e) => Err((IngestErrorKind::Io(e), state.checkpoint.lines_seen)),
        Ok(()) => ingest_loop(
            &mut reader,
            config,
            &RunGovernor::unlimited(),
            &mut state,
            &mut |_cp| {},
            &mut |_lineno, txn| {
                out.push(txn);
                Handled::Stored
            },
        ),
    };

    state.report.record_phase("ingest", started.elapsed());
    match outcome {
        Ok(()) => Ok((out, state.report, state.checkpoint)),
        Err((kind, line)) => Err(IngestError {
            kind,
            line,
            report: state.report,
            checkpoint: state.checkpoint,
            partial_assignments: Vec::new(),
        }),
    }
}

/// Folds per-invocation assignments into a [`Labeling`].
fn collect_labeling(assignments: &[Option<usize>], num_clusters: usize) -> Labeling {
    let mut cluster_counts = vec![0usize; num_clusters];
    let mut num_outliers = 0usize;
    for a in assignments {
        match a {
            Some(c) => cluster_counts[*c] += 1,
            None => num_outliers += 1,
        }
    }
    Labeling {
        assignments: assignments.to_vec(),
        cluster_counts,
        num_outliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultSpec, FaultyReader};
    use rock_core::similarity::Jaccard;
    use std::io::BufReader;

    fn test_labeler() -> Labeler<Transaction> {
        let sample = vec![
            Transaction::from([1, 2, 3]),
            Transaction::from([1, 2, 4]),
            Transaction::from([2, 3, 4]),
            Transaction::from([10, 11, 12]),
            Transaction::from([10, 11, 13]),
            Transaction::from([11, 12, 13]),
        ];
        let clusters = vec![vec![0, 1, 2], vec![3, 4, 5]];
        Labeler::full(&sample, &clusters, 0.4, 1.0 / 3.0)
    }

    fn no_sleep_config() -> ResilientConfig {
        ResilientConfig {
            retry: RetryPolicy::no_backoff(8),
            ..ResilientConfig::default()
        }
    }

    #[test]
    fn clean_stream_labels_like_label_all() {
        let labeler = test_labeler();
        let input = "1 2 3\n# comment\n\n10 11 12\n55 66 77\n2 3 4\n";
        let run = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &no_sleep_config(),
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(
            run.labeling.assignments,
            vec![Some(0), Some(1), None, Some(0)]
        );
        assert_eq!(run.labeling.cluster_counts, vec![2, 1]);
        assert_eq!(run.labeling.num_outliers, 1);
        assert_eq!(run.checkpoint.records_read, 4);
        assert_eq!(run.checkpoint.records_skipped, 2);
        assert_eq!(run.checkpoint.byte_offset, input.len() as u64);
        assert_eq!(run.checkpoint.cluster_counts, vec![2, 1]);
        assert_eq!(run.checkpoint.outliers, 1);
        assert!(!run.report.degraded());
        assert!(run.report.phase_duration("label-stream").is_some());
    }

    #[test]
    fn garbage_lines_are_quarantined_not_fatal() {
        let labeler = test_labeler();
        let input = "1 2 3\n1 2 x7!\n10 11 12\n";
        let run = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &no_sleep_config(),
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(run.labeling.assignments, vec![Some(0), Some(1)]);
        assert_eq!(run.checkpoint.records_quarantined, 1);
        assert_eq!(run.report.quarantined.len(), 1);
        assert_eq!(run.report.quarantined[0].line, 2);
        assert!(run.report.quarantined[0].reason.contains("x7!"));
        assert!(run.report.degraded());
    }

    #[test]
    fn quarantine_cap_aborts_with_salvage() {
        let labeler = test_labeler();
        let input = "1 2 3\nbad\nworse\nworst\n10 11 12\n";
        let config = ResilientConfig {
            max_quarantine: 2,
            ..no_sleep_config()
        };
        let err = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(
            err.kind,
            IngestErrorKind::QuarantineOverflow { cap: 2 }
        ));
        assert_eq!(err.line, 4);
        assert_eq!(err.partial_assignments, vec![Some(0)]);
        // The checkpoint is consistent: the overflowing line was consumed.
        assert_eq!(err.checkpoint.lines_seen, 4);
        assert!(err.to_string().contains("quarantine cap 2"));
    }

    #[test]
    fn transient_faults_are_retried_and_reported() {
        let labeler = test_labeler();
        let input: String = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    "1 2 3\n".to_string()
                } else {
                    "10 11 12\n".to_string()
                }
            })
            .collect();
        let spec = FaultSpec::none(11).transient(0.15, 1).chunk(8);
        let faulty = FaultyReader::new(input.as_bytes(), spec);
        let run = label_stream_resilient(
            BufReader::new(faulty),
            &labeler,
            &Jaccard,
            &no_sleep_config(),
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(run.checkpoint.records_read, 100);
        assert!(run.report.transient_io_errors > 0, "no faults fired");
        assert_eq!(run.report.io_retries, run.report.transient_io_errors);
        assert!(run.report.degraded());
        // Retried output matches a clean pass bit for bit.
        let clean = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &no_sleep_config(),
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(run.labeling, clean.labeling);
        assert_eq!(run.checkpoint, clean.checkpoint);
    }

    #[test]
    fn burst_beyond_retry_budget_is_a_hard_error_with_checkpoint() {
        let labeler = test_labeler();
        let input: String = (0..50).map(|_| "1 2 3\n").collect();
        // Burst of 6 against a budget of 2 → hard failure mid-stream.
        let spec = FaultSpec::none(5).transient(0.2, 6).chunk(8);
        let faulty = FaultyReader::new(input.as_bytes(), spec);
        let config = ResilientConfig {
            retry: RetryPolicy::no_backoff(2),
            ..ResilientConfig::default()
        };
        let err = label_stream_resilient(
            BufReader::new(faulty),
            &labeler,
            &Jaccard,
            &config,
            None,
            |_| {},
        )
        .unwrap_err();
        let IngestErrorKind::Io(e) = &err.kind else {
            panic!("expected Io error, got {:?}", err.kind);
        };
        assert!(RetryPolicy::is_transient(e));
        // Resume from the checkpoint over a clean reader finishes the job.
        let resumed = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            Some(&err.checkpoint),
            |_| {},
        )
        .unwrap();
        assert_eq!(resumed.report.resumed_from_offset, Some(err.checkpoint.byte_offset));
        let mut all = err.partial_assignments.clone();
        all.extend(resumed.labeling.assignments.iter().copied());
        assert_eq!(all, vec![Some(0); 50]);
        assert_eq!(resumed.checkpoint.records_read, 50);
        assert_eq!(resumed.checkpoint.byte_offset, input.len() as u64);
    }

    #[test]
    fn periodic_checkpoints_fire_and_resume_mid_stream() {
        let labeler = test_labeler();
        let input: String = (0..20)
            .map(|i| if i < 10 { "1 2 3\n" } else { "10 11 12\n" })
            .collect();
        let config = ResilientConfig {
            checkpoint_every: 7,
            ..no_sleep_config()
        };
        let mut checkpoints = Vec::new();
        let full = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |cp| checkpoints.push(cp.clone()),
        )
        .unwrap();
        assert_eq!(checkpoints.len(), 2); // lines 7 and 14 of 20
        assert_eq!(full.report.checkpoints_written, 2);
        // Resume from each periodic checkpoint; totals must match the
        // uninterrupted run exactly.
        for cp in &checkpoints {
            let resumed = label_stream_resilient(
                BufReader::new(input.as_bytes()),
                &labeler,
                &Jaccard,
                &config,
                Some(cp),
                |_| {},
            )
            .unwrap();
            assert_eq!(resumed.checkpoint, full.checkpoint, "resume from {cp:?}");
            assert_eq!(
                resumed.labeling.assignments,
                full.labeling.assignments[cp.records_read as usize..].to_vec()
            );
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_text() {
        let cp = Checkpoint {
            byte_offset: 12345,
            lines_seen: 100,
            records_read: 90,
            records_skipped: 7,
            records_quarantined: 3,
            cluster_counts: vec![40, 0, 50],
            outliers: 2,
        };
        assert_eq!(Checkpoint::decode(&cp.encode()).unwrap(), cp);
        // Empty cluster counts (plain-reader checkpoints) round-trip too.
        let cp0 = Checkpoint::new(0);
        assert_eq!(Checkpoint::decode(&cp0.encode()).unwrap(), cp0);
    }

    #[test]
    fn checkpoint_decode_rejects_damage() {
        let good = Checkpoint::new(2).encode();
        for bad in [
            "".to_string(),
            "rock-checkpoint v2\n".to_string(),
            good.replace("byte_offset=0", "byte_offset=zero"),
            good.replace("outliers=0\n", ""),
            good.replace("lines_seen=0", "lines_seen=0\nlines_seen=1"),
            good.replace("records_read", "records_devoured"),
        ] {
            let e = Checkpoint::decode(&bad).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "accepted: {bad:?}");
        }
    }

    #[test]
    fn mismatched_resume_checkpoint_is_rejected() {
        let labeler = test_labeler(); // 2 clusters
        let cp = Checkpoint::new(5);
        let err = label_stream_resilient(
            BufReader::new("1 2 3\n".as_bytes()),
            &labeler,
            &Jaccard,
            &no_sleep_config(),
            Some(&cp),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err.kind, IngestErrorKind::BadCheckpoint(_)));
        assert!(err.to_string().contains("cannot resume"));
    }

    #[test]
    fn checkpoint_beyond_eof_is_unexpected_eof() {
        let labeler = test_labeler();
        let mut cp = Checkpoint::new(2);
        cp.byte_offset = 10_000;
        let err = label_stream_resilient(
            BufReader::new("1 2 3\n".as_bytes()),
            &labeler,
            &Jaccard,
            &no_sleep_config(),
            Some(&cp),
            |_| {},
        )
        .unwrap_err();
        let IngestErrorKind::Io(e) = &err.kind else {
            panic!("expected Io, got {:?}", err.kind);
        };
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn nan_similarity_quarantines_the_record() {
        struct NanOnBigItems;
        impl Similarity<Transaction> for NanOnBigItems {
            fn similarity(&self, a: &Transaction, b: &Transaction) -> f64 {
                if a.items().iter().chain(b.items()).any(|&i| i >= 100) {
                    f64::NAN
                } else {
                    Jaccard.similarity(a, b)
                }
            }
        }
        let labeler = test_labeler();
        let input = "1 2 3\n100 2 3\n10 11 12\n";
        let run = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &NanOnBigItems,
            &no_sleep_config(),
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(run.labeling.assignments, vec![Some(0), Some(1)]);
        assert_eq!(run.checkpoint.records_quarantined, 1);
        assert!(run.report.quarantined[0]
            .reason
            .contains("non-finite similarity"));
    }

    #[test]
    fn invalid_utf8_is_quarantined_not_fatal() {
        let labeler = test_labeler();
        let mut bytes = b"1 2 3\n".to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        bytes.extend_from_slice(b"10 11 12\n");
        let run = label_stream_resilient(
            BufReader::new(bytes.as_slice()),
            &labeler,
            &Jaccard,
            &no_sleep_config(),
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(run.labeling.assignments, vec![Some(0), Some(1)]);
        assert_eq!(run.checkpoint.records_quarantined, 1);
    }

    #[test]
    fn resilient_reader_matches_plain_reader_on_clean_input() {
        let input = "1 2 3\n# c\n10 11\n";
        let (ts, report, cp) = read_baskets_resilient(
            BufReader::new(input.as_bytes()),
            &no_sleep_config(),
            None,
        )
        .unwrap();
        let plain =
            crate::basketio::read_baskets_numeric(BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(ts, plain);
        assert_eq!(report.records_read, 2);
        assert_eq!(cp.byte_offset, input.len() as u64);
        assert!(report.phase_duration("ingest").is_some());
    }

    #[test]
    fn resilient_reader_quarantines_and_resumes() {
        let input = "1 2 3\nnot numbers\n10 11\n";
        let (ts, report, cp) = read_baskets_resilient(
            BufReader::new(input.as_bytes()),
            &no_sleep_config(),
            None,
        )
        .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(report.records_quarantined, 1);
        // Resuming from the final checkpoint reads nothing more.
        let (rest, _, cp2) = read_baskets_resilient(
            BufReader::new(input.as_bytes()),
            &no_sleep_config(),
            Some(&cp),
        )
        .unwrap();
        assert!(rest.is_empty());
        assert_eq!(cp2.byte_offset, cp.byte_offset);
    }

    #[test]
    fn parallel_labeling_is_bit_identical_to_sequential() {
        let labeler = test_labeler();
        // Mix of labels, outliers, comments, blanks and garbage.
        let input: String = (0..500)
            .map(|i| match i % 7 {
                0 => "1 2 3\n".to_string(),
                1 => "10 11 12\n".to_string(),
                2 => "55 66 77\n".to_string(), // outlier
                3 => "# comment\n".to_string(),
                4 => "\n".to_string(),
                5 => "2 3 4\n".to_string(),
                _ => "11 12 13\n".to_string(),
            })
            .collect();
        let config = ResilientConfig {
            checkpoint_every: 37,
            ..no_sleep_config()
        };
        let mut seq_cps = Vec::new();
        let seq = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |cp| seq_cps.push(cp.clone()),
        )
        .unwrap();
        for threads in [2, 3, 8] {
            let mut par_cps = Vec::new();
            let par = label_stream_resilient_parallel(
                BufReader::new(input.as_bytes()),
                &labeler,
                &Jaccard,
                &config,
                None,
                |cp| par_cps.push(cp.clone()),
                threads,
            )
            .unwrap();
            assert_eq!(par.labeling, seq.labeling, "threads={threads}");
            assert_eq!(par.checkpoint, seq.checkpoint, "threads={threads}");
            assert_eq!(par_cps, seq_cps, "threads={threads}");
            assert_eq!(
                par.report.checkpoints_written,
                seq.report.checkpoints_written
            );
        }
    }

    #[test]
    fn parallel_quarantine_overflow_salvage_matches_sequential() {
        let labeler = test_labeler();
        let input = "1 2 3\nbad\n10 11 12\nworse\nworst\n1 2 3\n";
        let config = ResilientConfig {
            max_quarantine: 2,
            ..no_sleep_config()
        };
        let seq = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |_| {},
        )
        .unwrap_err();
        let par = label_stream_resilient_parallel(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |_| {},
            4,
        )
        .unwrap_err();
        assert!(matches!(
            par.kind,
            IngestErrorKind::QuarantineOverflow { cap: 2 }
        ));
        assert_eq!(par.line, seq.line);
        assert_eq!(par.checkpoint, seq.checkpoint);
        assert_eq!(par.partial_assignments, seq.partial_assignments);
    }

    #[test]
    fn parallel_run_resumes_from_sequential_checkpoint_and_back() {
        let labeler = test_labeler();
        let input: String = (0..60)
            .map(|i| if i % 2 == 0 { "1 2 3\n" } else { "10 11 12\n" })
            .collect();
        let config = ResilientConfig {
            checkpoint_every: 13,
            ..no_sleep_config()
        };
        let mut cps = Vec::new();
        let full = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |cp| cps.push(cp.clone()),
        )
        .unwrap();
        assert!(!cps.is_empty());
        // Resume a parallel run from a sequential periodic checkpoint.
        let resumed = label_stream_resilient_parallel(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            Some(&cps[0]),
            |_| {},
            3,
        )
        .unwrap();
        assert_eq!(resumed.checkpoint, full.checkpoint);
        assert_eq!(
            resumed.labeling.assignments,
            full.labeling.assignments[cps[0].records_read as usize..].to_vec()
        );
    }

    #[test]
    fn parallel_labeling_with_transient_faults_matches_clean_run() {
        let labeler = test_labeler();
        let input: String = (0..120)
            .map(|i| {
                if i % 3 == 0 {
                    "1 2 3\n".to_string()
                } else {
                    "10 11 12\n".to_string()
                }
            })
            .collect();
        let spec = FaultSpec::none(23).transient(0.1, 1).chunk(8);
        let faulty = FaultyReader::new(input.as_bytes(), spec);
        let run = label_stream_resilient_parallel(
            BufReader::new(faulty),
            &labeler,
            &Jaccard,
            &no_sleep_config(),
            None,
            |_| {},
            4,
        )
        .unwrap();
        let clean = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &no_sleep_config(),
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(run.labeling, clean.labeling);
        assert_eq!(run.checkpoint, clean.checkpoint);
    }

    #[test]
    fn governed_kill_interrupts_then_resume_is_bit_identical() {
        let labeler = test_labeler();
        let input: String = (0..60)
            .map(|i| match i % 3 {
                0 => "1 2 3\n",
                1 => "10 11 12\n",
                _ => "55 66 77\n", // outlier
            })
            .collect();
        let config = ResilientConfig {
            checkpoint_every: 7,
            ..no_sleep_config()
        };
        let baseline = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |_| {},
        )
        .unwrap();

        // Kill at absolute line 20 (check_at uses cumulative lines_seen).
        let governor = RunGovernor::unlimited().with_kill_at(Phase::Labeling, 20);
        let err = label_stream_resilient_governed(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            None,
            |_| {},
            &governor,
        )
        .unwrap_err();
        assert!(matches!(
            err.kind,
            IngestErrorKind::Interrupted {
                phase: Phase::Labeling,
                reason: TripReason::Cancelled,
            }
        ));
        assert_eq!(err.line, 21);
        assert_eq!(err.checkpoint.lines_seen, 20);
        assert_eq!(err.report.interrupted, Some((Phase::Labeling, TripReason::Cancelled)));
        assert!(err.report.degraded());
        assert!(err.to_string().contains("resume from byte"));

        // Resume from the interruption checkpoint with no governor limits:
        // the tail concatenated onto the salvage is bit-identical.
        let resumed = label_stream_resilient(
            BufReader::new(input.as_bytes()),
            &labeler,
            &Jaccard,
            &config,
            Some(&err.checkpoint),
            |_| {},
        )
        .unwrap();
        assert_eq!(resumed.checkpoint, baseline.checkpoint);
        let mut stitched = err.partial_assignments.clone();
        stitched.extend(resumed.labeling.assignments.iter().cloned());
        assert_eq!(stitched, baseline.labeling.assignments);
    }

    #[test]
    fn governed_parallel_stops_at_the_same_line_for_any_thread_count() {
        let labeler = test_labeler();
        let input: String = (0..90)
            .map(|i| {
                if i % 2 == 0 {
                    "1 2 3\n".to_string()
                } else {
                    "10 11 12\n".to_string()
                }
            })
            .collect();
        let config = ResilientConfig {
            checkpoint_every: 11,
            ..no_sleep_config()
        };
        let kill = |governor: &RunGovernor, threads: usize| {
            label_stream_resilient_parallel_governed(
                BufReader::new(input.as_bytes()),
                &labeler,
                &Jaccard,
                &config,
                None,
                |_| {},
                governor,
                threads,
            )
            .unwrap_err()
        };
        let seq = kill(&RunGovernor::unlimited().with_kill_at(Phase::Labeling, 40), 1);
        for threads in [2, 8] {
            let par = kill(
                &RunGovernor::unlimited().with_kill_at(Phase::Labeling, 40),
                threads,
            );
            assert_eq!(par.line, seq.line, "threads={threads}");
            assert_eq!(par.checkpoint, seq.checkpoint, "threads={threads}");
            assert_eq!(
                par.partial_assignments, seq.partial_assignments,
                "threads={threads}"
            );
        }
        // Speculative read-ahead past the stop line is discarded: the
        // checkpoint byte offset points at the first unprocessed line.
        let prefix: usize = input
            .lines()
            .take(seq.checkpoint.lines_seen as usize)
            .map(|l| l.len() + 1)
            .sum();
        assert_eq!(seq.checkpoint.byte_offset, prefix as u64);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
            jitter_seed: None,
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(35));
        assert_eq!(p.backoff(63), Duration::from_millis(35));
        assert_eq!(RetryPolicy::no_backoff(3).backoff(5), Duration::ZERO);
    }
}

//! # rock-data — data substrates for the ROCK reproduction
//!
//! Generators and parsers for every data set in the paper's evaluation
//! (§5):
//!
//! * [`synthetic`] — the §5.3 market-basket scalability data set
//!   (114,586 transactions, 10 clusters, 5% outliers), generated exactly
//!   to the paper's specification;
//! * [`votes`] — the Congressional-votes data set: a generator calibrated
//!   from the paper's Table 7 plus a UCI `house-votes-84.data` parser;
//! * [`mushroom`] — the mushroom data set: a species-template generator
//!   patterned on Tables 3/8/9 plus a UCI `agaricus-lepiota.data`
//!   parser;
//! * [`mutualfund`] — the US mutual-fund time series: a factor-model
//!   generator with Table-4 groups, staggered inceptions (missing
//!   values) and the §5.1 Up/Down/No discretisation;
//! * [`basketio`] — market-basket file IO, including lazy streaming for
//!   reservoir sampling straight off disk;
//! * [`packed`] — bit-packed CSR transaction storage whose popcount
//!   Jaccard kernel feeds the parallel neighbor-graph builder;
//! * [`dist`] — the Normal sampler (Box–Muller) the generators share.
//!
//! All generators take a caller-supplied `rand::Rng`, so fixed seeds give
//! fully reproducible data sets.
//!
//! ## Resilience
//!
//! The Fig.-2 labeling pass reads a disk-resident database, so this crate
//! also ships the fault-tolerant side of the pipeline:
//!
//! * [`resilient`] — streaming ingest/labeling with transient-error
//!   retries, quarantine of malformed records, periodic [`Checkpoint`]s
//!   and bit-identical resume after interruption;
//! * [`faults`] — deterministic fault injection ([`FaultyReader`],
//!   [`corrupt_baskets`]) used to test all of the above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basketio;
pub mod dist;
pub mod faults;
pub mod mushroom;
pub mod mutualfund;
pub mod packed;
pub mod resilient;
pub mod synthetic;
pub mod votes;

pub use basketio::{read_baskets, read_baskets_numeric, stream_baskets, write_baskets};
pub use faults::{
    corrupt_baskets, deadline_trip, kill_at, kill_at_merge, memory_budget_trip, poison_range,
    FaultSpec, FaultyReader, PoisonedSimilarity, ShardFaultSchedule, GARBAGE_TOKEN,
};
pub use packed::PackedBaskets;
pub use resilient::{
    label_stream_resilient, label_stream_resilient_governed, label_stream_resilient_parallel,
    label_stream_resilient_parallel_governed, read_baskets_resilient, Checkpoint, IngestError,
    IngestErrorKind, ResilientConfig, ResilientLabelRun, RetryPolicy,
};
pub use mushroom::{generate_mushrooms, parse_mushrooms, Edibility, MushroomData, MushroomSpec};
pub use mutualfund::{generate_funds, prices_to_record, Fund, FundData, FundSpec};
pub use synthetic::{
    generate_baskets, generate_drift_stream, DriftStreamData, DriftStreamSpec, DriftWindow,
    SyntheticBasketData, SyntheticBasketSpec,
};
pub use votes::{generate_votes, parse_votes, Party, VotesData, VotesSpec};

//! The Congressional-votes data set (§5.1, Tables 1–2, 7).
//!
//! The paper uses the 1984 United States Congressional Voting Records
//! from the UCI repository: 435 records (168 Republicans, 267 Democrats),
//! 16 boolean issues, very few missing values. The file is not shipped
//! here; two paths are provided:
//!
//! * [`generate_votes`] — a generator **calibrated from the paper's own
//!   Table 7**, which reports the per-party frequency of the dominant
//!   vote on every issue. Sampling each vote independently from those
//!   per-party Bernoulli rates reproduces the structure that drives
//!   Table 2 (two well-separated blocks with a minority of crossover
//!   voters).
//! * [`parse_votes`] — a parser for the original UCI
//!   `house-votes-84.data` format, so the real file can be dropped in.

use rand::Rng;
use rock_core::points::{CategoricalRecord, CategoricalSchema};

/// Party label of a Congress member.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Party {
    /// Republican.
    Republican,
    /// Democrat.
    Democrat,
}

/// The 16 issues, in the canonical UCI column order.
pub const VOTE_ISSUES: [&str; 16] = [
    "handicapped-infants",
    "water-project-cost-sharing",
    "adoption-of-the-budget-resolution",
    "physician-fee-freeze",
    "el-salvador-aid",
    "religious-groups-in-schools",
    "anti-satellite-test-ban",
    "aid-to-nicaraguan-contras",
    "mx-missile",
    "immigration",
    "synfuels-corporation-cutback",
    "education-spending",
    "superfund-right-to-sue",
    "crime",
    "duty-free-exports",
    "export-administration-act-south-africa",
];

/// P(vote = Yes) per issue, calibrated from Table 7 of the paper
/// (frequency of the reported dominant value, complemented when the
/// dominant value is "No"). `water-project-cost-sharing` is absent from
/// the paper's Democrat column — the issue was an even split — so it is
/// 0.5.
const P_YES_REPUBLICAN: [f64; 16] = [
    0.15, 0.51, 0.13, 0.92, 0.99, 0.93, 0.16, 0.10, 0.07, 0.51, 0.23, 0.86, 0.90, 0.98, 0.11,
    0.55,
];
const P_YES_DEMOCRAT: [f64; 16] = [
    0.65, 0.50, 0.94, 0.04, 0.08, 0.33, 0.89, 0.97, 0.86, 0.51, 0.44, 0.10, 0.21, 0.27, 0.68,
    0.70,
];

/// Specification of a generated votes data set.
#[derive(Clone, Copy, Debug)]
pub struct VotesSpec {
    /// Number of Republican records (paper: 168).
    pub num_republicans: usize,
    /// Number of Democrat records (paper: 267).
    pub num_democrats: usize,
    /// Per-vote probability of a missing value (paper: "very few").
    pub missing_rate: f64,
    /// Fraction of Democrats who are *crossover* voters — members whose
    /// votes blend towards the other party's distribution. The real 1984
    /// data has a sizable bloc of conservative ("boll weevil") Democrats,
    /// which is why the paper's Table 2 shows Democrats landing in the
    /// Republican cluster (52/209 for the traditional algorithm, 22/166
    /// for ROCK).
    pub crossover_democrats: f64,
    /// Fraction of Republicans who are crossover voters.
    pub crossover_republicans: f64,
}

impl VotesSpec {
    /// The paper's Table-1 configuration, with crossover fractions tuned
    /// so the Table-2 contamination pattern is reproduced.
    pub fn paper() -> Self {
        VotesSpec {
            num_republicans: 168,
            num_democrats: 267,
            missing_rate: 0.03,
            crossover_democrats: 0.18,
            crossover_republicans: 0.05,
        }
    }

    /// A clean two-bloc variant without crossover voters.
    pub fn clean() -> Self {
        VotesSpec {
            crossover_democrats: 0.0,
            crossover_republicans: 0.0,
            ..Self::paper()
        }
    }
}

/// The generated data set.
#[derive(Clone, Debug)]
pub struct VotesData {
    /// The records, shuffled; value id 0 = No, 1 = Yes.
    pub records: Vec<CategoricalRecord>,
    /// Ground-truth party per record.
    pub labels: Vec<Party>,
    /// Schema: 16 attributes with domain `{n, y}`.
    pub schema: CategoricalSchema,
}

/// The 16-issue schema (domain `{"n", "y"}` per issue; value 1 = Yes).
pub fn votes_schema() -> CategoricalSchema {
    let mut schema = CategoricalSchema::new();
    for issue in VOTE_ISSUES {
        schema.add_attribute(issue, vec!["n", "y"]);
    }
    schema
}

/// Generates a votes data set from the Table-7-calibrated model.
///
/// # Panics
/// Panics if `missing_rate ∉ [0, 1)`.
pub fn generate_votes<R: Rng + ?Sized>(spec: &VotesSpec, rng: &mut R) -> VotesData {
    assert!(
        (0.0..1.0).contains(&spec.missing_rate),
        "missing rate must be in [0, 1)"
    );
    let schema = votes_schema();
    let mut records = Vec::with_capacity(spec.num_republicans + spec.num_democrats);
    let mut labels = Vec::with_capacity(records.capacity());
    let push = |party: Party, rng: &mut R, records: &mut Vec<CategoricalRecord>| {
        let (own, other, crossover_rate) = match party {
            Party::Republican => (
                &P_YES_REPUBLICAN,
                &P_YES_DEMOCRAT,
                spec.crossover_republicans,
            ),
            Party::Democrat => (
                &P_YES_DEMOCRAT,
                &P_YES_REPUBLICAN,
                spec.crossover_democrats,
            ),
        };
        // A crossover member blends towards the other party's vote
        // distribution with a per-member strength in [0.5, 0.9].
        let blend = if rng.random::<f64>() < crossover_rate {
            0.5 + 0.4 * rng.random::<f64>()
        } else {
            0.0
        };
        let values = own
            .iter()
            .zip(other)
            .map(|(&po, &px)| {
                if rng.random::<f64>() < spec.missing_rate {
                    None
                } else {
                    let p = po * (1.0 - blend) + px * blend;
                    Some(u32::from(rng.random::<f64>() < p))
                }
            })
            .collect();
        records.push(CategoricalRecord::new(values));
    };
    for _ in 0..spec.num_republicans {
        push(Party::Republican, rng, &mut records);
        labels.push(Party::Republican);
    }
    for _ in 0..spec.num_democrats {
        push(Party::Democrat, rng, &mut records);
        labels.push(Party::Democrat);
    }
    // Shuffle records and labels together.
    for i in (1..records.len()).rev() {
        let j = rng.random_range(0..=i);
        records.swap(i, j);
        labels.swap(i, j);
    }
    VotesData {
        records,
        labels,
        schema,
    }
}

/// Parses the UCI `house-votes-84.data` format: one record per line,
/// `party,vote1,...,vote16` with votes `y`/`n`/`?`.
///
/// Returns records in file order. Lines that are empty or start with `#`
/// are skipped.
pub fn parse_votes(content: &str) -> Result<VotesData, String> {
    let schema = votes_schema();
    let mut records = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 17 {
            return Err(format!(
                "line {}: expected 17 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let party = match fields[0] {
            "republican" => Party::Republican,
            "democrat" => Party::Democrat,
            other => return Err(format!("line {}: unknown party {other:?}", lineno + 1)),
        };
        let record = schema
            .parse_record(&fields[1..], "?")
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        records.push(record);
        labels.push(party);
    }
    Ok(VotesData {
        records,
        labels,
        schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn paper_spec_counts() {
        let mut rng = StdRng::seed_from_u64(1984);
        let data = generate_votes(&VotesSpec::paper(), &mut rng);
        assert_eq!(data.records.len(), 435);
        let reps = data.labels.iter().filter(|p| **p == Party::Republican).count();
        assert_eq!(reps, 168);
        assert_eq!(data.schema.num_attributes(), 16);
    }

    #[test]
    fn party_vote_rates_match_table7() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = VotesSpec {
            num_republicans: 4000,
            num_democrats: 4000,
            missing_rate: 0.0,
            ..VotesSpec::clean()
        };
        let data = generate_votes(&spec, &mut rng);
        // physician-fee-freeze (issue 3): R yes ≈ 0.92, D yes ≈ 0.04.
        let mut r_yes = 0usize;
        let mut d_yes = 0usize;
        for (rec, party) in data.records.iter().zip(&data.labels) {
            if rec.value(3) == Some(1) {
                match party {
                    Party::Republican => r_yes += 1,
                    Party::Democrat => d_yes += 1,
                }
            }
        }
        let r_rate = r_yes as f64 / 4000.0;
        let d_rate = d_yes as f64 / 4000.0;
        assert!((r_rate - 0.92).abs() < 0.03, "R rate {r_rate}");
        assert!((d_rate - 0.04).abs() < 0.03, "D rate {d_rate}");
    }

    #[test]
    fn missing_rate_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = VotesSpec {
            num_republicans: 1000,
            num_democrats: 1000,
            missing_rate: 0.1,
            ..VotesSpec::clean()
        };
        let data = generate_votes(&spec, &mut rng);
        let total: usize = data.records.iter().map(|r| r.arity()).sum();
        let present: usize = data.records.iter().map(|r| r.num_present()).sum();
        let rate = 1.0 - present as f64 / total as f64;
        assert!((rate - 0.1).abs() < 0.02, "missing rate {rate}");
    }

    #[test]
    fn crossover_democrats_vote_more_republican() {
        // With crossover on, the average Democrat agreement with the
        // Republican platform must rise.
        let base = VotesSpec {
            num_republicans: 0,
            num_democrats: 4000,
            missing_rate: 0.0,
            ..VotesSpec::clean()
        };
        let crossed = VotesSpec {
            crossover_democrats: 0.3,
            ..base
        };
        // physician-fee-freeze: D yes rate 0.04 clean; blending raises it.
        let rate = |spec: &VotesSpec, seed: u64| {
            let data = generate_votes(spec, &mut StdRng::seed_from_u64(seed));
            data.records
                .iter()
                .filter(|r| r.value(3) == Some(1))
                .count() as f64
                / data.records.len() as f64
        };
        let clean = rate(&base, 10);
        let noisy = rate(&crossed, 10);
        assert!(noisy > clean + 0.1, "clean {clean}, crossover {noisy}");
    }

    #[test]
    fn parse_roundtrip() {
        let content = "\
republican,n,y,n,y,y,y,n,n,n,y,?,y,y,y,n,y
democrat,?,y,y,?,y,y,n,n,n,n,n,n,y,y,y,y
# a comment

democrat,y,y,y,n,n,n,y,y,y,n,y,n,n,n,y,y
";
        let data = parse_votes(content).unwrap();
        assert_eq!(data.records.len(), 3);
        assert_eq!(data.labels[0], Party::Republican);
        assert_eq!(data.records[0].value(0), Some(0)); // n
        assert_eq!(data.records[0].value(1), Some(1)); // y
        assert_eq!(data.records[0].value(10), None); // ?
        assert_eq!(data.records[1].value(0), None);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_votes("republican,y,n").is_err());
        assert!(parse_votes("green,n,y,n,y,y,y,n,n,n,y,n,y,y,y,n,y").is_err());
        assert!(parse_votes("republican,n,y,n,y,y,maybe,n,n,n,y,n,y,y,y,n,y").is_err());
    }
}

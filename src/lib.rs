//! # rock — facade crate for the ROCK clustering workspace
//!
//! Re-exports the full public API of [`rock_core`] (the algorithm) and
//! exposes the companion crates under their own names:
//!
//! * [`rock_baselines`] — traditional comparators (centroid hierarchical,
//!   MST/single-link, group average, k-means, k-modes, CLARANS, DBSCAN);
//! * [`rock_data`] — data generators calibrated to the paper's evaluation
//!   plus UCI parsers and basket-file IO;
//! * [`rock_eval`] — clustering quality metrics (contingency tables,
//!   (adjusted) Rand index, NMI, Hungarian-matched misclassification,
//!   cluster profiles).
//!
//! See the repository `README.md` for a tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and results.
//!
//! ```
//! use rock::points::Transaction;
//! use rock::similarity::Jaccard;
//! use rock::rock::Rock;
//!
//! let baskets = vec![
//!     Transaction::from([0, 1, 2]),
//!     Transaction::from([0, 1, 3]),
//!     Transaction::from([0, 2, 3]),
//!     Transaction::from([7, 8, 9]),
//!     Transaction::from([7, 8, 10]),
//!     Transaction::from([7, 9, 10]),
//! ];
//! let rock = Rock::builder().theta(0.5).clusters(2).build()?;
//! let run = rock.cluster(&baskets, &Jaccard);
//! assert_eq!(run.clustering.num_clusters(), 2);
//! # Ok::<(), rock::RockError>(())
//! ```

#![forbid(unsafe_code)]

pub use rock_core::*;

pub use rock_baselines;
pub use rock_data;
pub use rock_eval;

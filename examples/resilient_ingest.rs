//! Fault-tolerant Fig.-2 labeling: stream a damaged disk-resident basket
//! database through the resilient driver, survive an interruption, and
//! resume from the checkpoint to a bit-identical result.
//!
//! ```text
//! cargo run --release --example resilient_ingest
//! ```
//!
//! The demo clusters a clean in-memory sample, then labels a corrupted
//! on-"disk" image (garbage tokens + truncated lines) through a reader
//! that also fails transiently. One fault burst exceeds the retry budget
//! and interrupts the run; the carried checkpoint is persisted through
//! its text encoding and the pass resumes over a healthy reader. The
//! stitched output must equal an uninterrupted pass exactly.

use rock::governor::RunGovernor;
use rock::labeling::Labeler;
use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::Jaccard;
use rock_data::faults::{corrupt_baskets, FaultSpec, FaultyReader};
use rock_data::resilient::{
    label_stream_resilient, label_stream_resilient_governed, Checkpoint, ResilientConfig,
    RetryPolicy,
};
use rock_data::write_baskets;
use std::io::BufReader;

fn main() {
    // --- a small database: two buying patterns plus scattered outliers.
    let mut db: Vec<Transaction> = Vec::new();
    for i in 0..600u32 {
        db.push(match i % 10 {
            0..=3 => Transaction::from([1, 2, 3 + i % 2]),      // pattern A
            4..=7 => Transaction::from([10, 11, 12 + i % 2]),   // pattern B
            _ => Transaction::from([500 + i, 700 + i]),         // outlier
        });
    }
    let mut image_bytes = Vec::new();
    write_baskets(&mut image_bytes, &db).expect("in-memory write");
    let clean_image = String::from_utf8(image_bytes).expect("numeric baskets are ASCII");

    // --- the "disk" copy is damaged: garbage tokens and torn lines.
    let damage = FaultSpec::none(42).garbage(0.05).truncate(0.03);
    let image = corrupt_baskets(&clean_image, &damage);
    println!(
        "database: {} transactions written, image corrupted at 5% garbage / 3% truncation",
        db.len()
    );

    // --- cluster a clean sample and build the §4.6 labeler from it.
    let theta = 0.4;
    let sample: Vec<Transaction> = db
        .iter()
        .filter(|t| t.items().iter().all(|&i| i < 100))
        .take(40)
        .cloned()
        .collect();
    let rock = Rock::builder().theta(theta).clusters(2).build().expect("valid config");
    let run = rock.cluster(&sample, &Jaccard);
    let ftheta = (1.0 - theta) / (1.0 + theta);
    let labeler = Labeler::full(&sample, &run.clustering.clusters, theta, ftheta);
    println!("sample clustered into {} clusters", labeler.num_clusters());

    // --- reference: an uninterrupted resilient pass over the same image.
    let config = ResilientConfig {
        retry: RetryPolicy::no_backoff(3),
        max_quarantine: 200,
        quarantine_detail: 4,
        checkpoint_every: 100,
    };
    let reference = label_stream_resilient(
        BufReader::new(image.as_bytes()),
        &labeler,
        &Jaccard,
        &config,
        None,
        |_| {},
    )
    .expect("quarantine absorbs the data damage");
    assert!(
        reference.checkpoint.records_quarantined > 0,
        "the corrupted image should force quarantines"
    );

    // --- now the same pass through a reader whose transient-fault bursts
    //     exceed the retry budget: the run is interrupted mid-stream.
    let flaky = FaultSpec::none(42).transient(0.04, 10).chunk(32);
    let err = label_stream_resilient(
        BufReader::new(FaultyReader::new(image.as_bytes(), flaky)),
        &labeler,
        &Jaccard,
        &config,
        None,
        |cp| println!("  checkpoint at byte {} ({} records)", cp.byte_offset, cp.records_read),
    )
    .expect_err("burst of 10 against a budget of 3 must interrupt");
    println!("\ninterrupted: {err}");
    println!("salvaged {} assignments; report so far:", err.partial_assignments.len());
    print!("{}", err.report);

    // --- persist the checkpoint as text (as a real pipeline would) and
    //     resume over a healthy reader.
    let persisted = err.checkpoint.encode();
    let resume = Checkpoint::decode(&persisted).expect("checkpoint round-trips");
    // The resume goes through the governor-aware driver: a real pipeline
    // would hand the governor a cancellation token wired to its signal
    // handler, so an operator can stop the pass at a checkpointed line.
    let resumed = label_stream_resilient_governed(
        BufReader::new(image.as_bytes()),
        &labeler,
        &Jaccard,
        &config,
        Some(&resume),
        |_| {},
        &RunGovernor::unlimited(),
    )
    .expect("resume over a healthy reader completes");
    println!("resumed from byte {} and finished; final report:", resume.byte_offset);
    print!("{}", resumed.report);

    // --- the acceptance criterion: stitched output is bit-identical.
    let mut stitched = err.partial_assignments.clone();
    stitched.extend(resumed.labeling.assignments.iter().copied());
    assert_eq!(
        stitched, reference.labeling.assignments,
        "resumed pass must reproduce the uninterrupted pass exactly"
    );
    assert_eq!(resumed.checkpoint, reference.checkpoint);
    println!(
        "\nOK: {} records labeled ({} outliers, {} quarantined) — resumed run bit-identical",
        resumed.checkpoint.records_read,
        resumed.checkpoint.outliers,
        resumed.checkpoint.records_quarantined
    );
}

//! The parallel link-computation engine end to end: bit-packed neighbor
//! rows, CSR link kernels, a multi-threaded Fig.-2 pipeline and parallel
//! resilient labeling — every stage checked bit-identical against its
//! sequential counterpart, because thread count is a pure performance
//! knob in this codebase (see DESIGN.md §7).
//!
//! ```text
//! cargo run --release --example parallel_engine
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rock::labeling::Labeler;
use rock::links::compute_links_sparse;
use rock::links_matrix::LinkMatrix;
use rock::neighbors::NeighborGraph;
use rock::rock::Rock;
use rock::similarity::{Jaccard, PointsWith};
use rock::governor::RunGovernor;
use rock_data::resilient::{
    label_stream_resilient, label_stream_resilient_parallel_governed, ResilientConfig, RetryPolicy,
};
use rock_data::{generate_baskets, write_baskets, PackedBaskets, SyntheticBasketSpec};
use std::io::BufReader;
use std::time::Duration;

fn main() {
    // Floor at 2 so the sharded kernels are exercised even on one core —
    // the point here is determinism, not speedup.
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).max(2);
    println!("worker threads: {threads}");

    // ~2.3k transactions in 10 clusters + outliers (§5.3, scaled down).
    let spec = SyntheticBasketSpec::paper_scaled(0.02);
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(9));
    let txns = &data.transactions;
    println!("database: {} transactions over {} items", txns.len(), data.num_items);

    // --- stage 1: θ-neighbor graph over bit-packed rows.
    // PackedBaskets stores every transaction as a bitmap row, so each
    // Jaccard evaluation is a handful of popcounts instead of a sorted
    // merge — same f64s, bit for bit.
    let packed = PackedBaskets::new(txns);
    assert!(packed.uses_bitmap());
    println!(
        "packed {} rows into {} KiB (bitmap kernel: {})",
        packed.len(),
        packed.memory_bytes() / 1024,
        packed.uses_bitmap()
    );
    let theta = 0.5;
    let graph = NeighborGraph::build_parallel(&packed, theta, threads);
    let reference = NeighborGraph::build(&PointsWith::new(txns, Jaccard), theta);
    assert_eq!(graph, reference, "packed parallel graph must be bit-identical");
    println!(
        "neighbor graph: average degree {:.1} (parallel == sequential ✓)",
        graph.average_degree()
    );

    // --- stage 2: links. The CSR LinkMatrix picks the Fig.-4 counting
    // kernel or §4.4 matrix squaring by predicted cost; both shard across
    // threads and merge deterministically. The legacy hashmap table stays
    // as the cross-checked reference.
    let links = LinkMatrix::compute_auto(&graph, threads);
    let legacy = compute_links_sparse(&graph);
    assert_eq!(links.to_table(), legacy, "CSR kernels must match the reference table");
    println!(
        "links: {} linked pairs, {} total links (CSR == hashmap reference ✓)",
        links.num_linked_pairs(),
        links.total_links()
    );

    // --- stage 3: the full pipeline with the threads knob. Same seed +
    // same data ⇒ the parallel run reproduces the sequential run exactly.
    // The parallel side runs *governed* (a generous wall-clock deadline):
    // with no budget tripped the governed pipeline is bit-identical to
    // the plain one, and the report carries per-phase timings.
    let build = |threads: usize| {
        Rock::builder()
            .theta(theta)
            .clusters(spec.num_clusters())
            .sample_size(600)
            .labeling_fraction(0.3)
            .weed_outliers(3.0, 8)
            .seed(7)
            .threads(threads)
            .deadline(Duration::from_secs(600))
            .build()
            .expect("valid configuration")
    };
    let (par, report) = build(threads)
        .try_run(txns, &Jaccard)
        .expect("a 600 s deadline never trips here");
    let seq = build(1).run(txns, &Jaccard);
    assert_eq!(par.labeling.assignments, seq.labeling.assignments);
    assert!(!report.degraded(), "no budget tripped, nothing degraded");
    println!(
        "pipeline: {} clusters from a {}-point sample (threads={} == threads=1 ✓, governed)",
        par.sample_run.clustering.num_clusters(),
        par.sample_indices.len(),
        threads
    );

    // --- stage 4: parallel resilient labeling of a disk-resident stream.
    // Workers score batches in parallel while checkpoints, quarantine and
    // salvage accounting stay byte-identical with the sequential driver.
    let sample: Vec<_> = par.sample_indices.iter().map(|&i| txns[i].clone()).collect();
    let ftheta = (1.0 - theta) / (1.0 + theta);
    let labeler = Labeler::full(&sample, &par.sample_run.clustering.clusters, theta, ftheta);
    let mut image_bytes = Vec::new();
    write_baskets(&mut image_bytes, txns).expect("in-memory write");
    let image = String::from_utf8(image_bytes).expect("numeric baskets are ASCII");
    let config = ResilientConfig {
        retry: RetryPolicy::no_backoff(3),
        max_quarantine: 64,
        quarantine_detail: 4,
        checkpoint_every: 500,
    };
    let par_run = label_stream_resilient_parallel_governed(
        BufReader::new(image.as_bytes()),
        &labeler,
        &Jaccard,
        &config,
        None,
        |_| {},
        &RunGovernor::unlimited(),
        threads,
    )
    .expect("clean stream labels without interruption");
    let seq_run = label_stream_resilient(
        BufReader::new(image.as_bytes()),
        &labeler,
        &Jaccard,
        &config,
        None,
        |_| {},
    )
    .expect("sequential reference pass");
    assert_eq!(par_run.labeling.assignments, seq_run.labeling.assignments);
    assert_eq!(par_run.checkpoint, seq_run.checkpoint);
    println!(
        "resilient labeling: {} records, {} outliers (parallel == sequential ✓)",
        par_run.checkpoint.records_read, par_run.checkpoint.outliers
    );

    println!("\nOK: every parallel kernel reproduced its sequential result exactly");
}

//! Clustering time series as categorical data (paper §5.1/§5.2): mutual
//! funds are discretised to Up/Down/No daily price changes, missing
//! values (young funds) are handled with the pair-restricted similarity,
//! and ROCK recovers the fund families.
//!
//! ```text
//! cargo run --release --example fund_timeseries
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rock::rock::Rock;
use rock::similarity::{CategoricalJaccard, MissingPolicy};
use rock_data::{generate_funds, FundSpec};

fn main() {
    let spec = FundSpec::paper_scaled(0.4);
    let data = generate_funds(&spec, &mut StdRng::seed_from_u64(1993));
    let young = data
        .records
        .iter()
        .filter(|r| r.num_present() < r.arity())
        .count();
    println!(
        "{} funds over {} business days; {} young funds have missing prefixes",
        data.records.len(),
        spec.days,
        young
    );

    // The time-series missing-value policy (§3.1.2): only days present in
    // *both* records count.
    let sim = CategoricalJaccard::new(MissingPolicy::CommonAttributes);
    let rock = Rock::builder()
        .theta(0.8)
        .clusters(20)
        .build()
        .expect("valid configuration");
    let run = rock.cluster(&data.records, &sim);

    let mut described = 0;
    for cluster in &run.clustering.clusters {
        if cluster.len() < 4 {
            continue;
        }
        let mut counts: std::collections::HashMap<Option<usize>, usize> = Default::default();
        for &m in cluster {
            *counts.entry(data.funds[m as usize].group).or_insert(0) += 1;
        }
        let (group, n) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        let name = group.map_or("unrelated funds", |g| data.group_names[g].as_str());
        println!(
            "cluster of {:3} funds — {name} ({:.0}% pure)",
            cluster.len(),
            100.0 * *n as f64 / cluster.len() as f64
        );
        described += 1;
    }
    println!(
        "{described} family clusters; {} funds are outliers (idiosyncratic portfolios)",
        run.clustering.outliers.len()
    );
    assert!(described >= 5, "the major fund families should be found");
}

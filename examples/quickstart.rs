//! Quickstart: cluster a toy market-basket data set with ROCK.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rock::points::{ItemCatalog, Transaction};
use rock::rock::Rock;
use rock::similarity::Jaccard;

fn main() {
    // Intern item names so clusters can be described in words.
    let mut items = ItemCatalog::new();
    let basket = |items: &mut ItemCatalog, names: &[&str]| -> Transaction {
        names.iter().map(|n| items.intern(n)).collect()
    };

    // Two buying patterns from the paper's introduction: young-family
    // staples and imported foods, plus one odd basket.
    let baskets = vec![
        basket(&mut items, &["diapers", "baby food", "toys", "milk"]),
        basket(&mut items, &["diapers", "baby food", "milk", "sugar"]),
        basket(&mut items, &["diapers", "toys", "milk", "butter"]),
        basket(&mut items, &["baby food", "toys", "sugar", "butter"]),
        basket(&mut items, &["french wine", "swiss cheese", "belgian chocolate"]),
        basket(&mut items, &["french wine", "swiss cheese", "italian pasta sauce"]),
        basket(&mut items, &["french wine", "belgian chocolate", "italian pasta sauce"]),
        basket(&mut items, &["swiss cheese", "belgian chocolate", "italian pasta sauce"]),
        basket(&mut items, &["lawnmower"]),
    ];

    // θ = 0.3: four-item baskets sharing two items (Jaccard 2/6 ≈ 0.33)
    // are neighbors.
    let rock = Rock::builder()
        .theta(0.3)
        .clusters(2)
        .build()
        .expect("valid configuration");
    let run = rock.cluster(&baskets, &Jaccard);

    println!("found {} clusters:", run.clustering.num_clusters());
    for (c, members) in run.clustering.clusters.iter().enumerate() {
        println!("cluster {}:", c + 1);
        for &m in members {
            let names: Vec<&str> = baskets[m as usize]
                .items()
                .iter()
                .filter_map(|&i| items.name(i))
                .collect();
            println!("  {{{}}}", names.join(", "));
        }
    }
    println!("outliers (no neighbors): {:?}", run.clustering.outliers);
    assert_eq!(run.clustering.num_clusters(), 2);
    assert_eq!(run.clustering.outliers.len(), 1); // the lawnmower basket
}

//! Choosing the number of clusters after the fact: run ROCK once down to
//! a small k, capture the dendrogram, and inspect any intermediate cut —
//! no re-clustering needed.
//!
//! ```text
//! cargo run --release --example choose_k
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rock::algorithm::{OutlierPolicy, RockAlgorithm};
use rock::goodness::{BasketF, Goodness, GoodnessKind};
use rock::neighbors::NeighborGraph;
use rock::similarity::{Jaccard, PointsWith};
use rock::Dendrogram;
use rock_data::{generate_baskets, SyntheticBasketSpec};
use rock_eval::adjusted_rand_index;

fn main() {
    // 10 true clusters; pretend we do not know that.
    let data = generate_baskets(
        &SyntheticBasketSpec::paper_scaled(0.02),
        &mut StdRng::seed_from_u64(21),
    );
    let graph = NeighborGraph::build(&PointsWith::new(&data.transactions, Jaccard), 0.5);
    let goodness = Goodness::new(0.5, BasketF, GoodnessKind::Normalized);

    // One run to k = 2 captures the whole hierarchy above it.
    let run = RockAlgorithm::new(goodness, 2, OutlierPolicy::default()).run(&graph);
    let dendro = Dendrogram::from_run(&run).expect("no weeding → dendrogram");
    println!(
        "one clustering run: {} leaves, merges recorded down to {} clusters",
        dendro.num_leaves(),
        dendro.min_clusters()
    );

    // Score a few cuts against ground truth (in real use: against E_l or
    // domain judgement).
    let truth: Vec<usize> = data.labels.iter().map(|l| l.map_or(10, |c| c)).collect();
    let mut best = (0usize, f64::MIN);
    for k in [2usize, 5, 8, 10, 12, 20] {
        if k < dendro.min_clusters() || k > dendro.num_leaves() {
            continue;
        }
        let cut = dendro.cut(k);
        let pred: Vec<usize> = cut
            .assignments(truth.len())
            .iter()
            .map(|a| a.map_or(11, |c| c))
            .collect();
        let ari = adjusted_rand_index(&pred, &truth);
        println!("cut at k = {k:2}: ARI {ari:.3}");
        if ari > best.1 {
            best = (k, ari);
        }
    }
    println!("best cut: k = {} (true cluster count is 10)", best.0);
    assert_eq!(best.0, 10);
}

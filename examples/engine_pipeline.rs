//! The staged engine, driven three ways.
//!
//! The same clustering runs (1) through the uniform [`ClusterModel`]
//! fit contract (ROCK and a traditional baseline side by side), (2)
//! composed stage by stage on a [`rock::Pipeline`] session, and (3)
//! through the packaged `Rock::cluster` driver — and the staged and
//! packaged runs are asserted bit-identical, exiting non-zero on any
//! divergence.
//!
//! ```text
//! cargo run --release --example engine_pipeline
//! ```

use rock::engine::{ClusterModel, LinksStage, MergeStage, NeighborsStage};
use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::{Jaccard, PointsWith};
use rock::{ConstantF, Goodness, RockAlgorithm, RockModel};
use rock_baselines::{transactions_to_vectors, CentroidConfig, CentroidModel};

/// Three disjoint basket populations: 3-subsets of seven items per
/// cluster, item universes 0–6, 100–106, 200–206.
fn baskets(n_each: usize) -> Vec<Transaction> {
    let mut data = Vec::new();
    for c in 0..3u32 {
        let base = c * 100;
        let mut i = 0;
        'outer: for x in 0..7u32 {
            for y in (x + 1)..7 {
                for z in (y + 1)..7 {
                    data.push(Transaction::from([base + x, base + y, base + z]));
                    i += 1;
                    if i >= n_each {
                        break 'outer;
                    }
                }
            }
        }
    }
    data
}

fn engine() -> Rock {
    Rock::builder()
        .theta(0.4)
        .clusters(3)
        .seed(7)
        .build()
        .expect("valid configuration")
}

/// Any model — ROCK or baseline — fits through the same entry point.
fn fit_and_report<D: ?Sized, M: ClusterModel<D>>(model: &M, data: &D) -> usize {
    let fit = model.fit(data).expect("ungoverned fit");
    println!(
        "  {:>8}: {} clusters, {} outliers, phases [{}]",
        model.name(),
        fit.clustering.num_clusters(),
        fit.clustering.outliers.len(),
        fit.report
            .phases
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
    );
    fit.clustering.num_clusters()
}

fn main() {
    let data = baskets(18);

    // 1. The uniform ClusterModel contract: ROCK and a traditional
    //    baseline fit through the identical generic call.
    println!("models through the ClusterModel trait:");
    let rock_model = RockModel::new(engine(), Jaccard);
    let k_rock = fit_and_report(&rock_model, &data[..]);
    let vectors = transactions_to_vectors(&data, 207);
    let centroid = CentroidModel::new(CentroidConfig::plain(3));
    let k_centroid = fit_and_report(&centroid, &vectors[..]);
    assert_eq!(k_rock, 3);
    assert_eq!(k_centroid, 3);

    // 2. The same merge, composed stage by stage on a session pipeline:
    //    θ-neighbor graph → link matrix → governed agglomeration. Each
    //    `stage` call places one governor checkpoint at the boundary.
    let rock = engine();
    let (theta, threads, k) = (
        rock.config().theta,
        rock.config().threads,
        rock.config().k,
    );
    let goodness = Goodness::new(
        theta,
        ConstantF(rock.config().ftheta),
        rock.config().goodness_kind,
    );
    let algorithm = RockAlgorithm::new(goodness, k, rock.config().outliers);
    let mut session = rock.session();
    let pw = PointsWith::new(&data, Jaccard);
    let graph = session
        .stage(NeighborsStage {
            sim: &pw,
            theta,
            threads,
        })
        .expect("ungoverned stage");
    let links = session
        .stage(LinksStage {
            graph: &graph,
            threads,
        })
        .expect("ungoverned stage");
    let staged = session
        .stage(MergeStage {
            graph: &graph,
            links: Some(&links),
            algorithm,
            threads,
        })
        .expect("ungoverned stage");

    // 3. The packaged driver runs the same stages internally — the two
    //    paths must agree bit for bit, merge trace included.
    let packaged = engine().cluster(&data, &Jaccard);
    assert_eq!(staged.clustering, packaged.clustering);
    assert_eq!(staged.merges, packaged.merges);
    println!(
        "staged composition == packaged driver: {} clusters, {} merges — bit-identical",
        staged.clustering.num_clusters(),
        staged.merges.len(),
    );
}

//! Crash-safe clustering with the merge write-ahead log: journal every
//! merge decision, kill the run mid-merge, persist the WAL to disk, and
//! resume it — to a final clustering bit-identical to an uninterrupted
//! run.
//!
//! ```text
//! cargo run --release --example crash_resume
//! ```
//!
//! The "crash" is a deterministic governor kill point (the same
//! machinery a signal handler's cancellation token or a wall-clock
//! deadline would trip). The WAL round-trips through a real file, as it
//! would across two processes.

use rock::governor::{Phase, RunGovernor};
use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::Jaccard;
use rock::wal::{parse_wal, MergeWal};
use rock::RockError;

fn main() {
    // Three well-separated basket clusters over disjoint item ranges.
    let mut data: Vec<Transaction> = Vec::new();
    for c in 0..3u32 {
        let base = c * 100;
        for x in 0..6u32 {
            for y in (x + 1)..6 {
                data.push(Transaction::from([base + x, base + y, base + (y + 1) % 6]));
            }
        }
    }
    println!("database: {} transactions in 3 latent clusters", data.len());

    let build = |governor: RunGovernor| {
        Rock::builder()
            .theta(0.4)
            .clusters(3)
            .governor(governor)
            .build()
            .expect("valid configuration")
    };

    // --- the reference: an uninterrupted run.
    let baseline = build(RunGovernor::unlimited()).cluster(&data, &Jaccard);
    println!(
        "baseline: {} clusters after {} merges",
        baseline.clustering.num_clusters(),
        baseline.merges.len()
    );

    // --- the same run, journaled to a WAL and killed at merge 12. A
    // snapshot every 8 merges makes the log self-contained, so it could
    // even be resumed without the original data (resume_cluster_snapshot).
    let mut wal = MergeWal::new().with_snapshot_every(8);
    let killer = build(RunGovernor::unlimited().with_kill_at(Phase::Merge, 12));
    let err = killer
        .cluster_wal(&data, &Jaccard, &mut wal)
        .expect_err("the kill point must interrupt the run");
    assert!(matches!(err, RockError::Interrupted { resumable: true, .. }));
    println!("\ninterrupted: {err}");

    // --- persist the WAL as a crashing process would, then read it back.
    let path = std::env::temp_dir().join("rock_crash_resume.wal");
    wal.write_to(&path).expect("persist WAL");
    let bytes = std::fs::read(&path).expect("read WAL back");
    let replay = parse_wal(&bytes).expect("the journal parses");
    println!(
        "WAL: {} bytes, {} merges journaled, snapshot: {}",
        bytes.len(),
        replay.num_merges(),
        replay.has_snapshot()
    );

    // --- resume: replay the journaled prefix, then drive to completion.
    let resumed = build(RunGovernor::unlimited())
        .resume_cluster(&data, &Jaccard, &bytes, None)
        .expect("resume completes");
    assert_eq!(resumed.clustering, baseline.clustering);
    assert_eq!(resumed.merges, baseline.merges);
    assert_eq!(resumed.initial_points, baseline.initial_points);
    let _ = std::fs::remove_file(&path);
    println!(
        "\nOK: resumed run finished the remaining {} merges — clustering, merge \
         trace and dendrogram bit-identical to the uninterrupted run",
        baseline.merges.len() - replay.num_merges()
    );
}

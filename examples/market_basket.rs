//! The full Fig.-2 pipeline on a large synthetic market-basket database:
//! draw a random sample, cluster it with links, label the remaining
//! transactions, and score against ground truth.
//!
//! ```text
//! cargo run --release --example market_basket
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rock::rock::Rock;
use rock::similarity::Jaccard;
use rock_data::{generate_baskets, SyntheticBasketSpec};
use rock_eval::count_misclassified;

fn main() {
    // ~11.5k transactions in 10 clusters + 5% outliers (a 10% scale of
    // the paper's 114,586-transaction data set; see table5_synthetic).
    let spec = SyntheticBasketSpec::paper_scaled(0.1);
    let data = generate_baskets(&spec, &mut StdRng::seed_from_u64(2024));
    println!(
        "database: {} transactions over {} items, {} clusters + outliers",
        data.transactions.len(),
        data.num_items,
        spec.num_clusters()
    );

    // Cluster a 1,000-transaction sample and label the rest (Fig. 2).
    let rock = Rock::builder()
        .theta(0.5)
        .clusters(spec.num_clusters())
        .sample_size(1000)
        .labeling_fraction(0.3)
        .weed_outliers(3.0, 10)
        .seed(7)
        .build()
        .expect("valid configuration");
    let result = rock.run(&data.transactions, &Jaccard);

    println!(
        "sample of {} clustered into {} clusters; {} sample points weeded as outliers",
        result.sample_indices.len(),
        result.sample_run.clustering.num_clusters(),
        result.sample_run.clustering.outliers.len()
    );

    let m = count_misclassified(&result.labeling.assignments, &data.labels);
    println!(
        "labeling phase assigned all {} transactions: {} misclassified ({:.2}%)",
        m.total,
        m.misclassified,
        100.0 * m.rate()
    );
    assert!(m.rate() < 0.05, "pipeline should be near-perfect here");
}

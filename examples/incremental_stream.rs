//! Evolving model, end to end: fit a ROCK model on the head of a
//! drifting basket stream, absorb the rest window by window through the
//! incremental update path, survive a mid-stream kill by replaying the
//! update WAL, and persist the evolved model as a version-2 artifact.
//!
//! ```text
//! cargo run --release --example incremental_stream
//! ```
//!
//! The demo walks DESIGN.md §14: open a fitted artifact as an
//! [`IncrementalModel`] state, label arrivals against the per-cluster
//! representative pools, watch the staleness criterion trip a bounded
//! re-merge, and verify both durability stories — WAL replay to a
//! bit-identical digest and the v2 artifact round trip.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rock::governor::{Phase, RunGovernor};
use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::Jaccard;
use rock::{
    IncrementalModel, IncrementalRockState, ModelArtifact, OnlineAssignService, RockModel,
    ServeConfig, StalenessPolicy,
};
use rock_data::{generate_drift_stream, DriftStreamSpec};

fn main() {
    // --- a drifting stream: three basket clusters whose mixture mass
    // shifts from cluster 0 toward cluster 2 across four windows.
    let spec = DriftStreamSpec::small();
    let data = generate_drift_stream(&spec, &mut StdRng::seed_from_u64(41));
    println!(
        "stream: {} windows x {} transactions, weights {:?} -> {:?}",
        spec.num_windows, spec.window_size, data.windows[0].weights, data.windows[3].weights
    );

    // --- fit the batch pipeline on window 0 and keep the servable
    // artifact (the representative sets are what updates label against).
    let w0 = &data.windows[0].transactions;
    let rock = Rock::builder()
        .theta(0.5)
        .clusters(3)
        .sample_size(w0.len())
        .labeling_fraction(1.0)
        .seed(5)
        .hash_seed(9)
        .build()
        .expect("valid config");
    let model = RockModel::new(rock, Jaccard);
    let (fit, artifact) = model.fit_artifact(w0).expect("base fit");
    println!(
        "fit: {} clusters over window 0 ({} outliers)",
        fit.clustering.num_clusters(),
        fit.clustering.outliers.len()
    );

    // --- absorb the remaining windows through the update path.
    let mut state = model
        .open_incremental(&artifact, StalenessPolicy::default())
        .expect("artifact opens incrementally");
    for (i, window) in data.windows[1..].iter().enumerate() {
        let outcome = model
            .update(&mut state, &window.transactions)
            .expect("update");
        println!(
            "update {}: absorbed {}, rejected {}, dirty links {}, re-merged {} pairs",
            i + 1,
            outcome.absorbed,
            outcome.rejected,
            outcome.dirty_links,
            outcome.remerged.len()
        );
    }
    let prov = state.provenance();
    println!(
        "provenance: {} updates, {} absorbed, {} re-merges, digest {:08x}",
        prov.updates_applied,
        prov.points_absorbed,
        prov.remerges,
        state.digest()
    );

    // --- crash drill: replay the update WAL over the base artifact and
    // land on the bit-identical evolved state.
    let wal_bytes = state.wal().as_bytes();
    let (replayed, truncated) =
        IncrementalRockState::<Transaction>::resume(&artifact, wal_bytes, &Jaccard)
            .expect("replay");
    assert!(!truncated);
    assert_eq!(replayed.digest(), state.digest());
    println!(
        "resume: {} WAL bytes replay to digest {:08x} (bit-identical)",
        wal_bytes.len(),
        replayed.digest()
    );

    // --- a kill mid-update loses only the in-flight batch.
    let killer = RunGovernor::unlimited().with_kill_at(Phase::Labeling, 0);
    let mut doomed = IncrementalRockState::<Transaction>::from_artifact(
        &artifact,
        StalenessPolicy::default(),
    )
    .expect("artifact opens");
    let err = doomed
        .update(&data.windows[1].transactions, &Jaccard, &killer)
        .expect_err("injected kill");
    println!("kill drill: {err}");

    // --- persist the evolved model as a v2 artifact and reopen it.
    let path = std::env::temp_dir().join(format!("inc-stream-{}.rockart", std::process::id()));
    model.save_updated(&state, &path).expect("evolved save");
    let evolved = ModelArtifact::load(&path).expect("evolved load");
    let reopened = model
        .open_incremental(&evolved, StalenessPolicy::default())
        .expect("evolved artifact reopens");
    assert_eq!(reopened.digest(), state.digest());
    println!(
        "artifact: v2 round trip at {} preserves digest {:08x}",
        path.display(),
        reopened.digest()
    );

    // --- serve while evolving: the online service swaps snapshots
    // without blocking concurrent readers.
    let mut online: OnlineAssignService<Transaction, Jaccard> = OnlineAssignService::new(
        &artifact,
        Jaccard,
        ServeConfig::default(),
        StalenessPolicy::default(),
    )
    .expect("online service");
    let reader = online.service(); // a reader holds the old snapshot...
    let unlimited = RunGovernor::unlimited();
    online
        .absorb_batch(&data.windows[1].transactions, &unlimited)
        .expect("absorb");
    let batch = reader
        .assign_batch(&data.windows[2].transactions[..8])
        .expect("old snapshot still serves");
    println!(
        "online: absorbed a window while a held reader answered {} queries",
        batch.report.queries
    );

    std::fs::remove_file(&path).ok();
    println!("done.");
}

//! ROCK vs the traditional algorithms on one categorical data set, scored
//! with external indices (adjusted Rand index and NMI) against ground
//! truth — a quantitative rendition of the paper's §5.2 comparison.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rock::rock::Rock;
use rock::similarity::{CategoricalJaccard, PointsWith};
use rock_baselines::{
    centroid_hierarchical, kmodes, records_to_vectors, similarity_linkage, CentroidConfig,
    KModesConfig, Linkage, LinkageConfig,
};
use rock_data::{generate_votes, Party, VotesSpec};
use rock_eval::{adjusted_rand_index, normalized_mutual_information};

fn main() {
    let data = generate_votes(&VotesSpec::paper(), &mut StdRng::seed_from_u64(84));
    let truth: Vec<usize> = data
        .labels
        .iter()
        .map(|p| usize::from(*p == Party::Democrat))
        .collect();

    // Clustered points only are scored; outliers get their own label.
    let score = |name: &str, assignments: Vec<Option<usize>>| {
        let flat: Vec<usize> = assignments.iter().map(|a| a.map_or(99, |c| c)).collect();
        let ari = adjusted_rand_index(&flat, &truth);
        let nmi = normalized_mutual_information(&flat, &truth);
        println!("{name:26} ARI {ari:5.3}  NMI {nmi:5.3}");
        ari
    };

    println!("435 congressional-vote records, 2 parties:\n");

    let rock = Rock::builder()
        .theta(0.73)
        .clusters(2)
        .weed_outliers(3.0, 5)
        .build()
        .expect("valid configuration");
    let run = rock.cluster(&data.records, &CategoricalJaccard::default());
    let rock_ari = score("ROCK (theta=0.73)", run.clustering.assignments(truth.len()));

    let vectors = records_to_vectors(&data.records, &data.schema);
    let centroid = centroid_hierarchical(&vectors, CentroidConfig::paper(2));
    let centroid_ari = score("centroid hierarchical", centroid.assignments(truth.len()));

    let sim = CategoricalJaccard::default();
    let avg = similarity_linkage(
        &PointsWith::new(&data.records, &sim),
        LinkageConfig::new(2, Linkage::Average),
    );
    score("group average", avg.assignments(truth.len()));

    let mst = similarity_linkage(
        &PointsWith::new(&data.records, &sim),
        LinkageConfig::new(2, Linkage::Single),
    );
    let mst_ari = score("single link (MST)", mst.assignments(truth.len()));

    let mut rng = StdRng::seed_from_u64(5);
    let km = kmodes(&data.records, KModesConfig::new(2), &mut rng);
    score("k-modes", km.clustering.assignments(truth.len()));

    assert!(
        rock_ari > mst_ari,
        "links must beat raw pairwise similarity on this data"
    );
    assert!(
        rock_ari > centroid_ari,
        "links must beat the centroid-based traditional algorithm (paper Table 2)"
    );
}

//! Clustering with a domain-expert similarity table (paper §1.2): no
//! point coordinates at all — only an n×n similarity matrix — which is
//! exactly the situation where centroid-based methods cannot be applied
//! and ROCK's link criterion still works.
//!
//! ```text
//! cargo run --release --example expert_similarity
//! ```

use rock::goodness::{ConstantF, Goodness, GoodnessKind};
use rock::algorithm::{OutlierPolicy, RockAlgorithm};
use rock::neighbors::NeighborGraph;
use rock::similarity::SimilarityMatrix;

fn main() {
    // An expert scores the pairwise similarity of 9 wines; two schools
    // (old world: 0-4, new world: 5-8) plus noisy off-diagonal scores.
    let n = 9;
    let expert = SimilarityMatrix::from_fn(n, |i, j| {
        let same_school = (i < 5) == (j < 5);
        // Deterministic "expert noise".
        let wobble = ((i * 31 + j * 17) % 10) as f64 / 100.0;
        if same_school {
            0.75 + wobble
        } else {
            0.25 + wobble
        }
    });

    let graph = NeighborGraph::build(&expert, 0.7);
    // f(θ) is the expert's estimate of neighborhood density; here every
    // wine neighbors its whole school, so f ≈ 1.
    let goodness = Goodness::new(0.7, ConstantF(1.0), GoodnessKind::Normalized);
    let algo = RockAlgorithm::new(goodness, 2, OutlierPolicy::default());
    let run = algo.run(&graph);

    println!("clusters from the expert table alone:");
    for (c, members) in run.clustering.clusters.iter().enumerate() {
        println!("  school {}: wines {:?}", c + 1, members);
    }
    assert_eq!(run.clustering.num_clusters(), 2);
    assert_eq!(run.clustering.clusters[0], vec![0, 1, 2, 3, 4]);
    assert_eq!(run.clustering.clusters[1], vec![5, 6, 7, 8]);
}

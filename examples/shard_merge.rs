//! Fault-isolated shard-and-merge: partition the input into shards,
//! cluster each under its own child governor, and merge the survivors —
//! while shards crash, hang, and go poisonous underneath.
//!
//! ```text
//! cargo run --release --example shard_merge
//! ```
//!
//! Three acts:
//!
//! 1. a clean 3-shard run reassembles the latent clusters even though
//!    sharding split one of them across a shard boundary;
//! 2. a schedule of injected faults (a mid-merge crash, a hang) burns
//!    retry rungs but heals — the result is bit-identical to act 1;
//! 3. a poisoned shard (NaN similarities) is quarantined with full
//!    provenance, and the surviving clustering is bit-identical to a
//!    fault-free run over the surviving shards alone.

use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::Jaccard;
use rock::{RetryPolicy, ShardConfig};
use rock_data::faults::{poison_range, PoisonedSimilarity, ShardFaultSchedule};

fn main() {
    // Three well-separated basket clusters over disjoint item ranges.
    let mut data: Vec<Transaction> = Vec::new();
    for c in 0..3u32 {
        let base = c * 100;
        for x in 0..6u32 {
            for y in (x + 1)..6 {
                data.push(Transaction::from([base + x, base + y, base + (y + 1) % 6]));
            }
        }
    }
    println!("database: {} transactions in 3 latent clusters", data.len());

    let rock = Rock::builder()
        .theta(0.4)
        .clusters(3)
        .seed(11)
        .build()
        .expect("valid configuration");
    // 3 size-balanced shards — the shard boundaries do NOT line up with
    // the latent clusters, so the coarse merge pass has real work.
    let shard = ShardConfig {
        retry: RetryPolicy::no_backoff(2), // 3 attempts per shard, no sleeping
        merge_theta: Some(0.2),            // θ for representative link densities
        ..ShardConfig::new(3)
    };

    // --- act 1: a clean supervised run.
    let clean = rock
        .cluster_sharded(&data, &Jaccard, shard.clone())
        .expect("clean sharded run");
    println!("\n[clean] {}", clean.report);
    println!(
        "[clean] {} final clusters from {} surviving shards",
        clean.clustering.num_clusters(),
        clean.shard_runs.len()
    );
    assert_eq!(clean.clustering.num_clusters(), 3);
    assert!(clean.report.shard_notes.is_empty());

    // --- act 2: crash shard 1 two merges in, hang shard 2's first
    // attempt. Both shards heal inside their retry ladders (the crashed
    // attempt resumes from its carried WAL), so the run is bit-identical
    // to the clean one.
    let supervisor = rock.shard_supervisor(shard.clone()).expect("supervisor");
    let schedule = ShardFaultSchedule::new()
        .crash_at_merge(1, 0, 2)
        .hang(2, 0);
    let healed = supervisor
        .run_with_plan(&data, &Jaccard, &schedule)
        .expect("faulted run heals");
    assert_eq!(healed.clustering, clean.clustering);
    assert!(healed.report.shard_notes.is_empty());
    let attempts: Vec<u32> = healed.shard_runs.iter().map(|s| s.attempts).collect();
    println!(
        "\n[faulted] healed to the identical clustering; per-shard attempts: {:?}",
        attempts
    );

    // --- act 3: poison shard 0's slice of the input. Its similarities
    // go NaN, which is deterministic corruption — quarantined on the
    // first attempt, never retried.
    let shard0 = rock::shard_ranges(data.len(), shard.shards)[0].clone();
    let mut poisoned_data = data.clone();
    poison_range(&mut poisoned_data, shard0.clone(), 9999);
    let measure = PoisonedSimilarity { marker: 9999 };
    let degraded = supervisor
        .run_with_plan(&poisoned_data, &measure, &ShardFaultSchedule::new())
        .expect("poisoned run degrades, not errors");
    println!("\n[poisoned] {}", degraded.report);
    for note in &degraded.report.shard_notes {
        println!(
            "[poisoned] shard {} quarantined after {} attempt(s): {} ({} points dropped)",
            note.shard,
            note.attempts,
            note.reason,
            note.points.len()
        );
    }
    assert_eq!(degraded.report.shard_notes.len(), 1);
    let expected: Vec<u32> = (shard0.start as u32..shard0.end as u32).collect();
    assert_eq!(degraded.excluded_points(), expected);

    // The survivors are exactly what a fault-free run over shards 1–2
    // alone would have produced.
    let oracle = supervisor
        .run_excluding(&poisoned_data, &measure, &[0])
        .expect("exclusion oracle");
    assert_eq!(degraded.clustering, oracle.clustering);
    println!(
        "\nOK: faults healed bit-identically, poison quarantined with provenance, \
         survivors match the exclusion oracle"
    );
}

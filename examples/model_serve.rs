//! Durable model artifact, end to end: fit a sampled ROCK model, save
//! it atomically, reload it — through a source that fails transiently
//! and through deliberate corruption — and serve assign queries with
//! deadline-triggered degradation.
//!
//! ```text
//! cargo run --release --example model_serve
//! ```
//!
//! The demo walks the full ladder of DESIGN.md §11: bit-identical
//! save/load round trip, typed rejection of a flipped bit, retry past a
//! transient fault burst, and a zero-deadline batch that downshifts to
//! centroid scoring instead of failing — with the downshift recorded in
//! the `ServeReport`.

use rock::points::Transaction;
use rock::rock::Rock;
use rock::similarity::Jaccard;
use rock::{AssignService, ModelArtifact, RetryPolicy, RockModel, ServeConfig};
use rock_data::faults::{flip_artifact_bit, FaultSpec, FaultyArtifactSource};
use std::time::Duration;

fn main() {
    // --- a small database: two buying patterns plus scattered outliers.
    let mut db: Vec<Transaction> = Vec::new();
    for i in 0..600u32 {
        db.push(match i % 10 {
            0..=3 => Transaction::from([1, 2, 3 + i % 2]),    // pattern A
            4..=7 => Transaction::from([10, 11, 12 + i % 2]), // pattern B
            _ => Transaction::from([500 + i, 700 + i]),       // outlier
        });
    }

    // --- fit the Fig.-2 pipeline and persist the fitted state.
    let rock = Rock::builder()
        .theta(0.4)
        .clusters(2)
        .sample_size(120)
        .labeling_fraction(0.5)
        .weed_outliers(1.5, 2)
        .seed(42)
        .build()
        .expect("valid config");
    let model = RockModel::new(rock, Jaccard);
    let (fit, artifact) = model.fit_artifact(&db).expect("fit");
    println!(
        "fit: {} clusters over {} transactions ({} byte artifact)",
        fit.clustering.num_clusters(),
        db.len(),
        artifact.to_bytes().len()
    );

    let path = std::env::temp_dir().join(format!("model-serve-{}.rockart", std::process::id()));
    artifact.save(&path).expect("atomic save");
    let reloaded = ModelArtifact::load(&path).expect("load");
    assert_eq!(reloaded, artifact);
    println!("save/load: round trip is bit-identical at {}", path.display());

    // --- corruption is rejected with a typed error, never a panic.
    let damaged = flip_artifact_bit(&artifact.to_bytes(), 7);
    let err = ModelArtifact::from_bytes(&damaged).expect_err("damage must not load");
    println!("corruption: one flipped bit -> {err}");

    // --- a flaky source: two transient read failures, then success.
    let spec = FaultSpec::none(11).transient(0.5, 2);
    let mut source = FaultyArtifactSource::new(artifact.to_bytes(), spec);
    let (service, retries): (AssignService<Transaction, Jaccard>, u64) =
        AssignService::from_source(&mut source, Jaccard, ServeConfig::default())
            .expect("retry budget out-lasts the burst");
    println!(
        "serve: service up after {retries} retried fetches ({} clusters)",
        service.num_clusters()
    );

    let batch = service.assign_batch(&db).expect("assign");
    println!(
        "assign: {} queries, {} assigned, {} outliers, degraded: {}",
        batch.report.queries,
        batch.report.assigned,
        batch.report.unassigned,
        if batch.report.degraded.is_none() { "no" } else { "yes" },
    );

    // --- deadline pressure: a zero budget trips on query 0; the batch
    // still completes, on centroid-of-representatives scoring.
    let pressured = ServeConfig {
        batch_deadline: Some(Duration::ZERO),
        retry: RetryPolicy::default(),
        ..ServeConfig::default()
    };
    let service: AssignService<Transaction, Jaccard> =
        AssignService::new(&reloaded, Jaccard, pressured).expect("service");
    let batch = service.assign_batch(&db).expect("degraded batch completes");
    let note = batch.report.degraded.expect("zero deadline must degrade");
    println!("degradation: {note}");
    println!(
        "degradation: batch still answered {}/{} queries",
        batch.report.assigned + batch.report.unassigned,
        batch.report.queries
    );

    std::fs::remove_file(&path).ok();
    println!("done.");
}

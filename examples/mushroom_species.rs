//! Clustering categorical records: discover mushroom species and
//! describe them by their frequent attribute values (paper §5.2,
//! Tables 3/8/9 in miniature).
//!
//! ```text
//! cargo run --release --example mushroom_species
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rock::rock::Rock;
use rock::similarity::CategoricalJaccard;
use rock_data::{generate_mushrooms, Edibility, MushroomSpec};
use rock_eval::{cluster_profiles, ContingencyTable};

fn main() {
    // A 10%-scale mushroom data set (~815 records, 22 species blocks).
    let data = generate_mushrooms(
        &MushroomSpec::paper_scaled(0.1),
        &mut StdRng::seed_from_u64(8124),
    );
    println!("{} mushroom records, 22 categorical attributes", data.records.len());

    let rock = Rock::builder()
        .theta(0.8)
        .clusters(20)
        .build()
        .expect("valid configuration");
    let run = rock.cluster(&data.records, &CategoricalJaccard::default());

    let truth: Vec<usize> = data
        .labels
        .iter()
        .map(|e| usize::from(*e == Edibility::Poisonous))
        .collect();
    let pred = run.clustering.assignments(truth.len());
    let table = ContingencyTable::new(&pred, &truth);
    println!(
        "ROCK found {} clusters ({} pure w.r.t. edibility, purity {:.3})",
        table.num_clusters(),
        table.num_pure_clusters(),
        table.purity()
    );

    // Describe the two largest clusters the way the paper's appendix does.
    let profiles = cluster_profiles(&data.records, &data.schema, &run.clustering.clusters, 0.45);
    for (i, profile) in profiles.iter().take(2).enumerate() {
        println!("\ncluster {} ({} mushrooms):", i + 1, profile.size);
        println!("  {}", profile.render(&data.schema));
    }
    assert!(table.purity() > 0.95);
}

//! Offline stand-in for the `criterion` crate (bench-harness API subset).
//!
//! The registry is unreachable in this build environment, so the bench
//! harness is vendored: same macro surface (`criterion_group!` /
//! `criterion_main!`), same group/bencher call shapes
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`), but measurement is a plain
//! wall-clock sampler — no outlier analysis, no HTML reports.
//!
//! Output:
//! - human-readable mean/min/max per benchmark on stdout;
//! - when `BENCH_JSON` names a file, one JSON object per benchmark is
//!   appended to it (consumed by `scripts/bench_snapshot.sh`).
//!
//! CLI: any non-flag argument is a substring filter on the benchmark id
//! (matching `cargo bench -- <filter>`); `--bench`/`--test` and other
//! flags cargo forwards are ignored. `BENCH_SAMPLE_SIZE` overrides the
//! configured sample count (CI smoke runs set it to 1).
//!
//! ## Thread-count honesty
//!
//! A benchmark may declare how many worker threads it spawns via
//! [`BenchmarkId::threads`]. When the declared count exceeds the host's
//! available parallelism the harness marks the record **oversubscribed**
//! — on stdout and as `"oversubscribed":true` in the JSON record — so a
//! 2-thread "speedup" measured on a 1-CPU box is never mistaken for a
//! real scaling datum. Set `BENCH_SKIP_OVERSUBSCRIBED=1` to skip such
//! benchmarks entirely instead of marking them.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
    threads: Option<usize>,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
            threads: None,
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
            threads: None,
        }
    }

    /// Declares the number of worker threads this benchmark spawns
    /// (shim extension; upstream criterion has no equivalent). The
    /// harness compares it against the host's available parallelism to
    /// mark or skip oversubscribed runs.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            id: s.to_string(),
            threads: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id, threads: None }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (plus one
    /// untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _warmup = routine();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

#[derive(Debug)]
struct Record {
    id: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    p99_ns: f64,
    samples: usize,
    threads: Option<usize>,
    oversubscribed: bool,
}

/// Worker threads the host can actually run in parallel.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Whether `BENCH_SKIP_OVERSUBSCRIBED` asks the harness to drop (rather
/// than mark) benchmarks whose thread count exceeds the host's CPUs.
fn skip_oversubscribed() -> bool {
    std::env::var("BENCH_SKIP_OVERSUBSCRIBED")
        .map(|v| !v.trim().is_empty() && v.trim() != "0")
        .unwrap_or(false)
}

/// Nearest-rank p99 over the sample durations (equals the max for
/// fewer than 100 samples).
fn percentile_99(ns: &[f64]) -> f64 {
    let mut sorted = ns.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Benchmark driver: collects samples, prints a summary line per
/// benchmark, and optionally appends JSON records to `$BENCH_JSON`.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            filter: None,
            json_path: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Applies CLI args (`<filter>` substring) and env overrides
    /// (`BENCH_SAMPLE_SIZE`, `BENCH_JSON`). Called by `criterion_group!`.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                self.filter = Some(arg);
            }
        }
        if let Some(n) = std::env::var("BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            self.sample_size = n.max(1);
        }
        self.json_path = std::env::var("BENCH_JSON").ok();
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(&mut self, id: String, threads: Option<usize>, f: impl FnOnce(&mut Bencher)) {
        if !self.matches(&id) {
            return;
        }
        let oversubscribed = threads.is_some_and(|t| t > host_cpus());
        if oversubscribed && skip_oversubscribed() {
            println!(
                "bench {id:<60} SKIPPED (oversubscribed: {} threads > {} host cpus)",
                threads.unwrap_or(0),
                host_cpus()
            );
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            return;
        }
        let ns: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e9)
            .collect();
        let record = Record {
            id,
            mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
            min_ns: ns.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: ns.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            p99_ns: percentile_99(&ns),
            samples: ns.len(),
            threads,
            oversubscribed,
        };
        println!(
            "bench {:<60} mean {:>12}  min {:>12}  max {:>12}  p99 {:>12}  ({} samples){}",
            record.id,
            human_time(record.mean_ns),
            human_time(record.min_ns),
            human_time(record.max_ns),
            human_time(record.p99_ns),
            record.samples,
            if record.oversubscribed {
                "  [OVERSUBSCRIBED]"
            } else {
                ""
            }
        );
        if let Some(path) = &self.json_path {
            if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
                let threads_json = match record.threads {
                    Some(t) => format!(",\"threads\":{t},\"oversubscribed\":{}", record.oversubscribed),
                    None => String::new(),
                };
                let _ = writeln!(
                    file,
                    "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"p99_ns\":{:.1},\"samples\":{}{}}}",
                    record.id.replace('"', "'"),
                    record.mean_ns,
                    record.min_ns,
                    record.max_ns,
                    record.p99_ns,
                    record.samples,
                    threads_json
                );
            }
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(id.to_string(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// Formats nanoseconds with an adaptive unit.
fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let samples = self.effective_samples();
        let saved = self.criterion.sample_size;
        self.criterion.sample_size = samples;
        self.criterion.run_one(full, id.threads, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (summary is emitted per-benchmark as it runs).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        // 3 timed samples + 1 warm-up.
        assert_eq!(ran, 4);
    }

    #[test]
    fn p99_is_nearest_rank() {
        // Under 100 samples, p99 collapses to the max.
        assert_eq!(percentile_99(&[3.0, 1.0, 2.0]), 3.0);
        // With 200 samples 0..200, rank ceil(200*0.99)=198 → value 197.
        let ns: Vec<f64> = (0..200).map(f64::from).collect();
        assert_eq!(percentile_99(&ns), 197.0);
    }

    #[test]
    fn threads_metadata_lands_in_json() {
        let path = std::env::temp_dir().join(format!(
            "criterion-shim-test-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion {
            sample_size: 1,
            filter: None,
            json_path: Some(path.display().to_string()),
        };
        let mut group = c.benchmark_group("g");
        group.bench_function(BenchmarkId::new("par", 2).threads(2), |b| b.iter(|| ()));
        group.bench_function(BenchmarkId::new("seq", 0), |b| b.iter(|| ()));
        group.finish();
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"threads\":2"), "got: {}", lines[0]);
        assert!(lines[0].contains("\"oversubscribed\":"), "got: {}", lines[0]);
        // Benchmarks that declare no thread count carry no thread fields.
        assert!(!lines[1].contains("threads"), "got: {}", lines[1]);
    }

    #[test]
    fn group_ids_and_filter() {
        let mut c = Criterion {
            sample_size: 1,
            filter: Some("keep".to_string()),
            json_path: None,
        };
        let mut group = c.benchmark_group("g");
        let mut hit = false;
        group.bench_with_input(BenchmarkId::new("keep", 7), &7, |b, _| {
            b.iter(|| hit = true)
        });
        let mut missed = false;
        group.bench_function(BenchmarkId::from_parameter("skip"), |b| {
            b.iter(|| missed = true)
        });
        group.finish();
        assert!(hit && !missed);
    }
}

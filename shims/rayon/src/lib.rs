//! Offline stand-in for `rayon` (fork-join subset).
//!
//! The build environment cannot fetch crates, so this shim provides the
//! slice of the rayon-core API the workspace's parallel kernels use —
//! [`scope`], [`join`], [`current_num_threads`], and a token
//! [`ThreadPoolBuilder`] — implemented over `std::thread::scope`.
//!
//! Unlike real rayon there is no work-stealing pool: every `spawn` is an
//! OS thread joined when the scope ends. The kernels in `rock-core`
//! spawn one task per worker shard (not per item), so the per-spawn cost
//! is amortised over large chunks and the semantics (all tasks complete
//! before `scope` returns, panics propagate) match what the callers rely
//! on.

#![forbid(unsafe_code)]

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the current "pool" would use: the installed
/// pool override if inside [`ThreadPool::install`], else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Fork-join scope. All tasks spawned on the scope complete before
/// `scope` returns; a panic in any task propagates to the caller.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on this scope. The task receives a scope handle so
    /// it can spawn nested tasks, mirroring rayon's signature.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a fork-join scope à la `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let b = s.spawn(oper_b);
        let ra = oper_a();
        (ra, b.join().expect("rayon::join: second closure panicked"))
    })
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a logical thread pool. The shim's "pool" only records the
/// requested width, which [`current_num_threads`] reports inside
/// [`ThreadPool::install`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default width (machine parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width; `0` means machine parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the logical pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Logical thread pool: scopes the thread-count seen by
/// [`current_num_threads`] while a closure runs.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Reported pool width.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with [`current_num_threads`] reporting this pool's width.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(Some(self.num_threads)));
        let out = f();
        POOL_THREADS.with(|t| t.set(prev));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_allows_disjoint_mut_chunks() {
        let mut data = vec![0u32; 100];
        scope(|s| {
            for (i, chunk) in data.chunks_mut(30).enumerate() {
                s.spawn(move |_| {
                    for v in chunk {
                        *v = i as u32 + 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&v| v > 0));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn pool_install_overrides_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }
}

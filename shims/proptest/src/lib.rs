//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro with `proptest_config`, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`option::of`], [`any`], a minimal `.{m,n}`
//! string pattern, and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test RNG (seeded from the test name, overridable
//! with `PROPTEST_RNG_SEED`), and failing inputs are reported but **not
//! shrunk**. `PROPTEST_CASES` caps the case count for smoke runs.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test execution plumbing: RNG and failure type.

    /// Error carried out of a failing property-test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG for value generation (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a), or `PROPTEST_RNG_SEED` when set,
        /// so each test gets a stable but distinct stream.
        pub fn deterministic(test_name: &str) -> Self {
            if let Ok(s) = std::env::var("PROPTEST_RNG_SEED") {
                if let Ok(seed) = s.trim().parse::<u64>() {
                    return TestRng { state: seed };
                }
            }
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                let lo = m as u64;
                if lo >= bound || lo >= bound.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count with the `PROPTEST_CASES` env override applied (used by
    /// CI smoke runs to keep property tests fast).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .map(|n| n.min(self.cases).max(1))
            .unwrap_or(self.cases)
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // Occasionally emit the exact endpoints so boundary behaviour is
        // exercised, which a pure open-interval draw would never hit.
        match rng.below(64) {
            0 => start,
            1 => end,
            _ => start + rng.unit_f64() * (end - start),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Minimal `.{m,n}` pattern strategy for `&'static str` patterns: a
/// random-length string of printable characters (newline excluded, like
/// regex `.`). Any other pattern is produced literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((min, max)) = parse_dot_repeat(self) {
            let len = min + rng.below((max - min + 1) as u64) as usize;
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                let c = match rng.below(20) {
                    // Mostly printable ASCII, occasionally wider unicode.
                    0 => char::from_u32(0xA0 + rng.below(0x2000) as u32).unwrap_or('¤'),
                    1 => '\t',
                    _ => (0x20u8 + rng.below(0x5f) as u8) as char,
                };
                s.push(c);
            }
            s
        } else {
            (*self).to_string()
        }
    }
}

/// Parses a pattern of the exact form `.{m,n}`.
fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (via [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy: `size` may be a `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // ~3:1 Some:None, mirroring proptest's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` sometimes, `Some(value)` usually.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod strategy {
    //! Re-exports mirroring proptest's module layout.
    pub use super::{FlatMap, Map, Strategy};
}

pub mod prelude {
    //! Glob-import surface: traits, config, and macros.
    pub use super::test_runner::TestCaseError;
    pub use super::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` test, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal `#[test]` that runs the body over `cases`
/// generated inputs; failing inputs are reported with their case number
/// (no shrinking in this offline shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cases,
                        __e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = vec(any::<u64>(), 7usize).generate(&mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    #[test]
    fn dot_repeat_pattern() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..100 {
            let s = ".{0,300}".generate(&mut rng);
            assert!(s.chars().count() <= 300);
            assert!(!s.contains('\n'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(a in 0usize..50, pair in (0u32..4, 0u32..4)) {
            prop_assert!(a < 50);
            prop_assert_eq!(pair.0 / 4, 0, "quotient must vanish, got {:?}", pair);
        }
    }
}

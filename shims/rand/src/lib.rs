//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access and an empty registry, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`Rng::random`] / [`Rng::random_range`], [`SeedableRng::seed_from_u64`],
//! [`SeedableRng::from_os_rng`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ (Blackman & Vigna) seeded through
//! splitmix64 — the standard seeding recipe for the xoshiro family. It is
//! a high-quality non-cryptographic generator; the statistical tests in
//! `rock-data` (sample moments, reservoir uniformity) pass against it.
//! Streams are deterministic per seed but are NOT the ChaCha12 streams of
//! upstream `rand`; the workspace only relies on determinism, not on
//! matching upstream byte-for-byte.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, span)` via Lemire's widening-multiply
/// method with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless lo < (2^64 mod span).
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds the generator from OS-derived entropy (wall clock + ASLR
    /// noise in this offline shim).
    fn from_os_rng() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let stack_probe = 0u8;
        let aslr = &stack_probe as *const u8 as usize as u64;
        Self::seed_from_u64(t ^ aslr.rotate_left(32) ^ std::process::id() as u64)
    }
}

/// One step of the splitmix64 sequence (Steele, Lea & Flood).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias kept for API parity with upstream `rand`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let v = rng.random_range(5u32..=7);
            assert!((5..=7).contains(&v));
        }
    }
}
